"""Figure-6 and Figure-7 driver tests (reduced scale)."""

import pytest

from repro.experiments import run_fig6_cell, run_fig7_census
from repro.experiments.fig6_minimd import format_fig6
from repro.experiments.fig7_views import format_fig7


RANKS = [4, 8]  # reduced from the paper's {8, 27, 64} for test speed


@pytest.fixture(scope="module")
def cells():
    out = {}
    for n in RANKS:
        out[("none", n)] = run_fig6_cell(
            "none", n, with_failure=False, pfs_servers=1
        )
        out[("kr_veloc", n)] = run_fig6_cell("kr_veloc", n, pfs_servers=1)
        out[("fenix_kr_veloc", n)] = run_fig6_cell(
            "fenix_kr_veloc", n, pfs_servers=1
        )
    return out


class TestFig6Claims:
    def test_phases_present(self, cells):
        rep = cells[("fenix_kr_veloc", 8)].clean
        assert rep.category("force_compute") > rep.category("neighboring")
        assert rep.category("communicator") > 0

    def test_force_compute_is_compute_bound(self, cells):
        """'Force Compute' dominated by compute, 'Communicator' by waits."""
        rep = cells[("fenix_kr_veloc", 8)].clean
        assert rep.category("force_compute") > rep.category("communicator")

    def test_communicator_phase_takes_largest_relative_overhead(self, cells):
        """Claim 6: checkpointing hits the communication-bound phase
        hardest, relatively."""
        base = cells[("none", 8)].clean
        ckpt = cells[("fenix_kr_veloc", 8)].clean

        def rel_overhead(cat):
            b = base.category(cat)
            return (ckpt.category(cat) - b) / b if b > 0 else 0.0

        assert rel_overhead("communicator") > rel_overhead("force_compute")

    def test_fenix_saves_more_with_expensive_init(self, cells):
        """Claim 7: MiniMD's large init -> large Fenix 'Other' savings."""
        for n in RANKS:
            fenix = cells[("fenix_kr_veloc", n)]
            relaunch = cells[("kr_veloc", n)]
            other_saving = (
                (relaunch.failed.other - relaunch.clean.other)
                - (fenix.failed.other - fenix.clean.other)
            )
            # the relaunch pays launch+init again (~several seconds here)
            assert other_saving > 2.0
            assert fenix.failure_cost < relaunch.failure_cost

    def test_weak_scaling_wall_roughly_flat(self, cells):
        walls = [cells[("fenix_kr_veloc", n)].clean.wall_time for n in RANKS]
        assert max(walls) / min(walls) < 1.2

    def test_noise_hides_checkpoint_latency(self):
        """Section VI-D1: performance variability hides part of the
        asynchronous-checkpoint overhead in the communication waits."""

        def comm_overhead(jitter):
            base = run_fig6_cell("none", 8, with_failure=False,
                                 pfs_servers=1, jitter=jitter)
            ckpt = run_fig6_cell("fenix_kr_veloc", 8, with_failure=False,
                                 pfs_servers=1, jitter=jitter)
            b = base.clean.category("communicator")
            return (ckpt.clean.category("communicator") - b) / max(b, 1e-9)

        quiet = comm_overhead(0.02)
        noisy = comm_overhead(0.3)
        assert noisy < quiet

    def test_format(self, cells):
        table = format_fig6([cells[("fenix_kr_veloc", n)] for n in RANKS])
        assert "force_compute" in table


class TestFig7:
    def test_counts_match_paper_at_all_sizes(self):
        rows = run_fig7_census()
        assert [r.sim_size for r in rows] == [100, 200, 300, 400]
        for row in rows:
            assert row.counts == {
                "checkpointed": 39, "alias": 3, "skipped": 19,
            }

    def test_fractions_sum_to_one(self):
        for row in run_fig7_census([100, 400]):
            assert sum(row.fractions.values()) == pytest.approx(1.0)

    def test_skipped_views_are_large(self):
        """'the large memory size of the 19 skipped views'."""
        row = run_fig7_census([200])[0]
        assert row.fractions["skipped"] > row.fractions["alias"]
        assert row.fractions["skipped"] > 0.3

    def test_dominant_view_majority(self):
        """'a single view contains the majority of the data'."""
        for row in run_fig7_census([100, 400]):
            assert row.dominant_view_fraction > 0.5

    def test_fractions_stable_across_sizes(self):
        """The class fractions are size-independent (all classes scale
        with the position array), as in the paper's flat bars."""
        rows = run_fig7_census()
        first = rows[0].fractions
        for row in rows[1:]:
            for key in first:
                assert row.fractions[key] == pytest.approx(first[key], abs=0.02)

    def test_format(self):
        text = format_fig7(run_fig7_census([100]))
        assert "checkpointed" in text
