"""Figure-5 driver tests: shape claims at reduced scale (fast)."""

import pytest

from repro.experiments import run_fig5_cell
from repro.experiments.fig5_heatdis import format_fig5


N_RANKS = 8  # reduced from the paper's 64 for test speed
PFS_SERVERS = 1  # scaled with the rank count to keep the paper's ratio


@pytest.fixture(scope="module")
def cells():
    """One bundle of cells reused by all shape assertions."""
    out = {}
    for size in ("16MB", "1GB"):
        out[("none", size)] = run_fig5_cell(
            "none", size, N_RANKS, with_failure=False, pfs_servers=PFS_SERVERS
        )
        for strategy in ("veloc", "kr_veloc", "fenix_kr_veloc", "fenix_kr_imr"):
            out[(strategy, size)] = run_fig5_cell(
                strategy, size, N_RANKS, pfs_servers=PFS_SERVERS
            )
    return out


def overhead(cells, strategy, size):
    return (
        cells[(strategy, size)].clean.wall_time
        - cells[("none", size)].clean.wall_time
    )


class TestOverheadClaims:
    def test_kr_adds_negligible_overhead_over_manual_veloc(self, cells):
        """Claim 1: KR as a VeloC manager costs ~nothing."""
        for size in ("16MB", "1GB"):
            manual = cells[("veloc", size)].clean.wall_time
            managed = cells[("kr_veloc", size)].clean.wall_time
            assert managed == pytest.approx(manual, rel=0.02)

    def test_fenix_adds_negligible_overhead(self, cells):
        """Claim 2a: adding Fenix costs ~nothing without failures."""
        for size in ("16MB", "1GB"):
            without = cells[("kr_veloc", size)].clean.wall_time
            with_fenix = cells[("fenix_kr_veloc", size)].clean.wall_time
            assert with_fenix == pytest.approx(without, rel=0.02)

    def test_veloc_checkpoint_function_stays_cheap(self, cells):
        """Claim 3: VeloC's sync cost is a memcpy; it does not blow up
        with data size the way the payload does (64x data -> ~64x memcpy,
        still tiny in absolute terms)."""
        small = cells[("fenix_kr_veloc", "16MB")].clean
        large = cells[("fenix_kr_veloc", "1GB")].clean
        assert large.category("checkpoint_function") < 0.1
        assert small.category("checkpoint_function") < 0.01

    def test_veloc_cost_surfaces_as_app_mpi(self, cells):
        """Claim 3: the real VeloC cost is congestion, not the checkpoint
        call -- the App-MPI increase dwarfs the checkpoint-function time."""
        none_mpi = cells[("none", "1GB")].clean.category("app_mpi")
        veloc = cells[("fenix_kr_veloc", "1GB")].clean
        congestion = veloc.category("app_mpi") - none_mpi
        assert congestion > 0
        assert congestion > veloc.category("checkpoint_function")

    def test_imr_checkpoint_scales_with_size(self, cells):
        """Claim 4: IMR's checkpoint function cost is linear in size."""
        small = cells[("fenix_kr_imr", "16MB")].clean.category(
            "checkpoint_function")
        large = cells[("fenix_kr_imr", "1GB")].clean.category(
            "checkpoint_function")
        assert large > small * 20

    def test_imr_beats_veloc_at_small_sizes(self, cells):
        """Claim 4: IMR outperforms disk-based at low data sizes."""
        assert overhead(cells, "fenix_kr_imr", "16MB") < overhead(
            cells, "fenix_kr_veloc", "16MB"
        )

    def test_imr_checkpoint_scales_worse_than_veloc(self, cells):
        """Claim 4: '[IMR's checkpoint function] scales worse against data
        size than VeloC-based checkpointing' (VeloC's sync part is just a
        memory copy; IMR also pays the buddy transfer)."""

        def ckpt_growth(strategy):
            return (
                cells[(strategy, "1GB")].clean.category("checkpoint_function")
                - cells[(strategy, "16MB")].clean.category("checkpoint_function")
            )

        assert ckpt_growth("fenix_kr_imr") > 3 * ckpt_growth("fenix_kr_veloc")


class TestFailureClaims:
    def test_fenix_cuts_failure_cost(self, cells):
        """Claim 2b: online repair beats relaunch, savings in Other."""
        for size in ("16MB", "1GB"):
            fenix = cells[("fenix_kr_veloc", size)]
            relaunch = cells[("kr_veloc", size)]
            assert fenix.failure_cost < relaunch.failure_cost
            fenix_other = fenix.failed.other - fenix.clean.other
            relaunch_other = relaunch.failed.other - relaunch.clean.other
            assert fenix_other < relaunch_other

    def test_recovery_cost_scales_with_data(self, cells):
        """Claim 5: data-recovery time follows recovered bytes."""
        small = cells[("fenix_kr_veloc", "16MB")].failed.category(
            "data_recovery")
        large = cells[("fenix_kr_veloc", "1GB")].failed.category(
            "data_recovery")
        assert large > small

    def test_recovery_similar_between_backends(self, cells):
        """Claim 5: VeloC and IMR recover at similar cost."""
        veloc = cells[("fenix_kr_veloc", "1GB")].failed.category(
            "data_recovery")
        imr = cells[("fenix_kr_imr", "1GB")].failed.category("data_recovery")
        assert imr == pytest.approx(veloc, rel=1.0)  # same magnitude

    def test_recompute_dominates_recovery(self, cells):
        """'The bulk of the cost of recovery is in recomputing'."""
        failed = cells[("fenix_kr_veloc", "1GB")].failed
        assert failed.category("recompute") > failed.category("data_recovery")


class TestDriver:
    def test_cells_complete_and_format(self, cells):
        table = format_fig5([c for c in cells.values()])
        assert "fenix_kr_veloc" in table
        assert "1.0GiB" in table or "953" in table  # 1GB rendered

    def test_failure_runs_recover_correct_state(self, cells):
        import numpy as np

        clean = cells[("fenix_kr_veloc", "16MB")].clean
        failed = cells[("fenix_kr_veloc", "16MB")].failed
        for r in range(N_RANKS):
            np.testing.assert_array_equal(
                clean.results[r]["grid"], failed.results[r]["grid"]
            )
