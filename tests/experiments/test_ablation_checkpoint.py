"""Checkpoint data-path ablation: full vs incremental.

The acceptance bar for the incremental data path: restore after a
failure is *bit-identical* between ``incremental=True`` and
``incremental=False`` on the fig5 heatdis scenario.
"""

import numpy as np
import pytest

from repro.experiments.ablation_checkpoint import (
    _arm_specs,
    format_ablation,
    run_checkpoint_ablation,
    verify_restore_equivalence,
)
from repro.parallel import execute_cell


class TestRestoreEquivalence:
    def test_fig5_heatdis_bit_identical(self):
        # three in-process runs: failed(full), failed(incr), clean(incr)
        outcome = verify_restore_equivalence(n_ranks=2, data_size="16MB")
        assert outcome["ranks"] == 2
        # 2 ranks x 2 pairings (incr/full and failed/clean)
        assert outcome["compared"] == 4

    def test_mismatch_detection_is_real(self):
        # guard the guard: grids from *different* scenarios must differ,
        # otherwise the equivalence assertion is vacuous
        specs_a = _arm_specs("heatdis", "incremental", 2, 16e6)
        specs_b = _arm_specs("heatdis", "incremental", 2, 16e6)
        clean = execute_cell(specs_a[0]).report
        failed = execute_cell(specs_b[1]).report
        # same scenario, clean vs failed: equal by recovery exactness
        ga = clean.results[0]["grid"]
        gb = failed.results[0]["grid"]
        assert np.array_equal(ga, gb)
        assert not np.array_equal(ga, np.zeros_like(ga))


class TestAblationSweep:
    def test_heatdis_arms_report_data_path(self):
        cells = run_checkpoint_ablation(n_ranks=2, data_size="16MB",
                                        apps=["heatdis"])
        by_arm = {c.arm: c for c in cells}
        assert set(by_arm) == {"full", "incremental"}
        full, incr = by_arm["full"], by_arm["incremental"]
        # both arms survive the injected failure and pay a failure cost
        assert full.failure_cost > 0 and incr.failure_cost > 0
        # the full arm reports an all-dirty path, no dedup accounting
        assert full.data_path["dirty_fraction"] == pytest.approx(1.0)
        # heatdis mutates raw arrays: the incremental arm must stay
        # conservative (full copies), never under-report
        assert incr.data_path["dirty_fraction"] == pytest.approx(1.0)
        assert 0.0 <= incr.data_path.get("dedup_ratio", 0.0) <= 1.0
        table = format_ablation(cells)
        assert "dirty%" in table and "incremental" in table
