"""The shared diff helper: modes, budgets, exit codes, flag aliases."""

import argparse

import pytest

from repro.report.compare import (
    EXIT_OK,
    EXIT_REGRESSION,
    Delta,
    add_budget_flag,
    budget_verdict,
    compare_scalars,
    format_deltas,
    over_budget,
    relative_change,
)


class TestRelativeChange:
    def test_growth_mode(self):
        assert relative_change(10.0, 11.0, "growth") == pytest.approx(0.1)
        assert relative_change(10.0, 9.0, "growth") == pytest.approx(-0.1)

    def test_growth_zero_baseline(self):
        assert relative_change(0.0, 1.0, "growth") == float("inf")
        assert relative_change(0.0, 0.0, "growth") == 0.0

    def test_symmetric_mode_direction_agnostic(self):
        up = relative_change(10.0, 11.0, "symmetric")
        down = relative_change(11.0, 10.0, "symmetric")
        assert up == down == pytest.approx(1.0 / 11.0)

    def test_symmetric_two_zeros(self):
        assert relative_change(0.0, 0.0, "symmetric") == 0.0

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            relative_change(1.0, 2.0, "sideways")


class TestCompareScalars:
    def test_union_sorted(self):
        deltas = compare_scalars({"b": 1.0, "a": 2.0}, {"a": 2.0, "c": 3.0})
        assert [d.name for d in deltas] == ["a", "b", "c"]

    def test_explicit_key_order(self):
        deltas = compare_scalars({"x": 1.0}, {"x": 2.0}, keys=["y", "x"])
        assert [d.name for d in deltas] == ["y", "x"]

    def test_absent_side_is_none(self):
        (d,) = compare_scalars({"x": 1.0}, {})
        assert d.baseline == 1.0 and d.current is None
        assert d.structural


class TestOverBudget:
    def test_growth_only_fails_increases(self):
        deltas = [Delta("up", 1.0, 1.2), Delta("down", 1.0, 0.5)]
        failing = over_budget(deltas, budget=0.1, mode="growth")
        assert [d.name for d in failing] == ["up"]

    def test_symmetric_fails_both_directions(self):
        deltas = [Delta("up", 1.0, 1.2), Delta("down", 1.0, 0.5)]
        failing = over_budget(deltas, budget=0.1, mode="symmetric")
        assert [d.name for d in failing] == ["up", "down"]

    def test_structural_always_fails(self):
        failing = over_budget([Delta("gone", 1.0, None)], budget=10.0)
        assert len(failing) == 1

    def test_abs_floor_suppresses_tiny_metrics(self):
        deltas = [Delta("tiny", 1e-6, 5e-4), Delta("gone", 1e-9, None)]
        assert over_budget(deltas, budget=0.05, abs_floor=1e-3) == []


class TestFormatting:
    def test_marks_failures(self):
        deltas = [Delta("a", 1.0, 2.0), Delta("b", 1.0, 1.0)]
        lines = format_deltas(deltas, [deltas[0]], mode="growth")
        assert "OVER-BUDGET" in lines[0]
        assert "OVER-BUDGET" not in lines[1]

    def test_structural_wording(self):
        (line,) = format_deltas([Delta("a", None, 2.0)], [])
        assert "absent" in line and "structural" in line

    def test_empty(self):
        assert format_deltas([], []) == []


class TestVerdict:
    def test_ok(self):
        code, text = budget_verdict([], 0.05, what="metric")
        assert code == EXIT_OK
        assert "within the 0.05 budget" in text

    def test_regression_names_offenders(self):
        code, text = budget_verdict([Delta("x.mean", 1.0, 2.0)], 0.05)
        assert code == EXIT_REGRESSION
        assert "x.mean" in text


class TestBudgetFlag:
    def _parser(self):
        p = argparse.ArgumentParser()
        add_budget_flag(p, 0.05, "budget")
        return p

    def test_default(self):
        assert self._parser().parse_args([]).budget == 0.05

    def test_budget_spelling(self):
        assert self._parser().parse_args(["--budget", "0.2"]).budget == 0.2

    def test_tolerance_alias(self):
        args = self._parser().parse_args(["--tolerance", "0.3"])
        assert args.budget == 0.3
