"""Deterministic statistics: summaries, percentiles, bootstrap CIs."""

import pytest

from repro.report.stats import (
    bootstrap_ci,
    mean,
    median,
    outlier_indices,
    percentile,
    stdev,
    summarize,
    zscores,
)


class TestBasics:
    def test_mean_empty_is_zero(self):
        assert mean([]) == 0.0

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_median_odd_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 2.0, 3.0]) == pytest.approx(2.5)

    def test_stdev_small_samples(self):
        assert stdev([]) == 0.0
        assert stdev([5.0]) == 0.0
        assert stdev([2.0, 4.0]) == pytest.approx(2.0 ** 0.5)


class TestPercentile:
    def test_interpolates(self):
        assert percentile([0.0, 10.0], 50.0) == pytest.approx(5.0)

    def test_endpoints(self):
        vals = [5.0, 1.0, 3.0]
        assert percentile(vals, 0.0) == 1.0
        assert percentile(vals, 100.0) == 5.0

    def test_singleton(self):
        assert percentile([7.0], 95.0) == 7.0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


class TestBootstrap:
    def test_deterministic_across_calls(self):
        vals = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert bootstrap_ci(vals) == bootstrap_ci(vals)

    def test_seed_changes_interval(self):
        # few resamples so the seed's effect is visible (at the default
        # 2000 both seeds converge to the same percentile cuts)
        vals = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert bootstrap_ci(vals, resamples=20, seed=1) != \
            bootstrap_ci(vals, resamples=20, seed=2)

    def test_interval_brackets_the_mean(self):
        vals = [1.0, 2.0, 3.0, 4.0, 5.0]
        ci = bootstrap_ci(vals)
        assert ci["lo"] <= mean(vals) <= ci["hi"]

    def test_single_value_collapses(self):
        assert bootstrap_ci([4.2]) == {"lo": 4.2, "hi": 4.2}

    def test_empty_is_zero(self):
        assert bootstrap_ci([]) == {"lo": 0.0, "hi": 0.0}

    def test_bad_confidence_raises(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], confidence=1.0)


class TestSummarize:
    def test_keys_and_ci(self):
        s = summarize([1.0, 2.0, 3.0])
        for key in ("n", "mean", "median", "p95", "min", "max", "stdev",
                    "ci_lo", "ci_hi"):
            assert key in s
        assert s["n"] == 3
        assert s["ci_lo"] <= s["mean"] <= s["ci_hi"]

    def test_no_ci(self):
        s = summarize([1.0, 2.0], ci=False)
        assert "ci_lo" not in s

    def test_empty(self):
        s = summarize([])
        assert s["n"] == 0 and s["mean"] == 0.0


class TestOutliers:
    def test_zscores_zero_spread(self):
        assert zscores([3.0, 3.0, 3.0]) == [0.0, 0.0, 0.0]

    def test_outlier_found(self):
        vals = [1.0, 1.1, 0.9, 1.0, 1.05, 0.95, 50.0]
        assert outlier_indices(vals, threshold=2.0) == [6]

    def test_no_outliers_in_tight_group(self):
        assert outlier_indices([1.0, 1.01, 0.99]) == []
