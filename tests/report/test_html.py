"""HTML report: self-contained, color-stable, escaped, dark-mode ready."""

import re

from repro.report.html import (
    PALETTE,
    esc,
    hbar_chart,
    render_html,
    strategy_colors,
)
from tests.report.test_ledger import make_ledger


def render(ledger=None):
    return render_html(ledger or make_ledger())


class TestStrategyColors:
    def test_fixed_first_seen_slots(self):
        colors = strategy_colors(["a", "b", "c"])
        assert colors["a"] == PALETTE[0]
        assert colors["b"] == PALETTE[1]
        assert colors["c"] == PALETTE[2]

    def test_filtering_does_not_repaint(self):
        # color follows the entity: dropping "a" must not shift "b"
        full = strategy_colors(["a", "b"])
        assert strategy_colors(["b"])["b"] == PALETTE[0]  # fresh order...
        assert full["b"] == PALETTE[1]  # ...but a stable list keeps slots

    def test_past_palette_is_neutral_not_cycled(self):
        names = [f"s{i}" for i in range(10)]
        colors = strategy_colors(names)
        assert colors["s9"] not in PALETTE
        assert colors["s8"] == colors["s9"]  # both neutral gray


class TestHbarChart:
    ROWS = [{"label": "kr_veloc", "mean": 12.0, "ci_lo": 10.0,
             "ci_hi": 14.0, "color": PALETTE[0], "n": 3}]

    def test_contains_bar_whisker_and_label(self):
        svg = hbar_chart("Overhead", "%", self.ROWS)
        assert "<svg" in svg and "</svg>" in svg
        assert "kr_veloc" in svg
        assert "12.0" in svg  # direct value label
        assert "<title>" in svg  # native tooltip

    def test_empty_rows_render_nothing(self):
        assert hbar_chart("Overhead", "%", []) == ""


class TestRenderHtml:
    def test_self_contained(self):
        html = render()
        # zero external assets: no http(s) fetches, no script tags
        assert not re.search(r'(?:src|href)\s*=\s*"https?:', html)
        assert "<script" not in html
        assert "<style>" in html

    def test_has_dark_mode(self):
        assert "prefers-color-scheme: dark" in render()

    def test_scorecard_table_and_charts_present(self):
        html = render()
        assert "kr_veloc" in html
        assert "<svg" in html
        assert "<table" in html  # accessible tabular view

    def test_embedded_exemplars(self):
        ledger = make_ledger()
        ledger.exemplars["kr_veloc"] = {
            "timeline": "t=1.0 rank2 rank_killed",
            "folded": "rank2;app_compute 123",
        }
        html = render(ledger)
        assert "rank_killed" in html
        assert "app_compute 123" in html

    def test_flags_rendered(self):
        ledger = make_ledger()
        ledger.runs[1].violations = 3
        assert "violation" in render(ledger)

    def test_escapes_untrusted_text(self):
        ledger = make_ledger()
        ledger.runs[1].label = '<script>alert("x")</script>'
        html = render(ledger)
        assert "<script>" not in html
        assert "&lt;script&gt;" in html

    def test_esc_quotes(self):
        assert esc('a"b<c>') == "a&quot;b&lt;c&gt;"

    def test_ci_bounds_in_document(self):
        html = render()
        # the scorecard table carries the bootstrap interval brackets
        assert re.search(r"\[\d", html)
