"""Campaign ledger: records, scorecards, regressions, anomaly flags."""

import pytest

from repro.report.ledger import (
    BENCH_ANCHOR,
    BENCH_ANCHOR_RANK_ITERS,
    LEDGER_SCHEMA,
    CampaignLedger,
    RunRecord,
    build_scorecard,
    flag_anomalies,
    flatten_scorecard,
    format_scorecard,
    metric_direction,
    scorecard_regressions,
)


def record(label="kr/r4/s1", strategy="kr_veloc", n_ranks=4, seed=1,
           wall=20.0, failures=2, buckets=None, **kw):
    return RunRecord(
        label=label, strategy=strategy, app="heatdis", n_ranks=n_ranks,
        seed=seed, wall_time=wall, attempts=failures + 1,
        failures=failures,
        buckets=buckets or {"recompute": 2.0, "checkpoint_function": 0.5},
        **kw,
    )


def make_ledger(walls=(20.0, 22.0, 21.0), ideal=10.0):
    ledger = CampaignLedger(meta={"app": "heatdis"})
    ledger.add_ideal(4, ideal)
    ledger.add_run(record(label="none/r4", strategy="none", seed=0,
                          wall=ideal, failures=0, buckets={}))
    for i, wall in enumerate(walls):
        # buckets proportional to wall so the *_frac metrics stay flat
        # across wall-time changes (only overhead/latency/wall move)
        ledger.add_run(record(
            label=f"kr/r4/s{i}", seed=i, wall=wall,
            buckets={"recompute": 0.1 * wall,
                     "checkpoint_function": 0.025 * wall},
        ))
    return ledger


class TestRunRecord:
    def test_derived_metrics(self):
        r = record(wall=20.0, failures=2)
        assert r.efficiency(10.0) == pytest.approx(0.5)
        assert r.overhead_pct(10.0) == pytest.approx(100.0)
        assert r.recovery_latency(10.0) == pytest.approx(5.0)
        assert r.bucket_frac("recompute") == pytest.approx(0.1)

    def test_failure_free_has_no_recovery_latency(self):
        assert record(failures=0).recovery_latency(10.0) is None

    def test_roundtrip(self):
        r = record(cached=True, host_seconds=0.25, n_iters=30)
        assert RunRecord.from_dict(r.to_dict()) == r


class TestLedger:
    def test_views(self):
        ledger = make_ledger()
        assert ledger.strategies == ["kr_veloc"]  # "none" excluded
        assert ledger.scales == [4]
        assert ledger.seeds == [0, 1, 2]
        assert ledger.cells() == 4  # baseline included
        assert len(ledger.group("kr_veloc", 4)) == 3

    def test_ideal_lookup_error_names_known_scales(self):
        with pytest.raises(KeyError, match=r"have \[4\]"):
            make_ledger().ideal_for(8)

    def test_save_load_roundtrip(self, tmp_path):
        ledger = make_ledger()
        ledger.exemplars["kr_veloc"] = {"timeline": "t", "folded": "f"}
        path = tmp_path / "campaign.json"
        ledger.save(path)
        loaded = CampaignLedger.load(path)
        assert loaded.to_dict() == ledger.to_dict()

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            CampaignLedger.from_dict({"schema": LEDGER_SCHEMA + 1})


class TestScorecard:
    def test_distributions_and_ci(self):
        sc = build_scorecard(make_ledger())
        entry = sc["strategies"]["kr_veloc"]
        assert entry["n_runs"] == 3
        assert entry["n_failed_runs"] == 3
        m = entry["metrics"]
        assert m["overhead_pct"]["n"] == 3
        assert m["overhead_pct"]["ci_lo"] <= m["overhead_pct"]["mean"]
        assert m["overhead_pct"]["mean"] <= m["overhead_pct"]["ci_hi"]
        # recovery latency = (wall - ideal) / failures over failed runs
        assert m["recovery_latency_s"]["mean"] == pytest.approx(
            (10.0 + 12.0 + 11.0) / 3 / 2
        )

    def test_deterministic(self):
        assert build_scorecard(make_ledger()) == \
            build_scorecard(make_ledger())

    def test_flatten_skips_empty_distributions(self):
        ledger = make_ledger()
        for r in ledger.runs:
            r.failures = 0  # no failed runs -> empty recovery latency
        flat = flatten_scorecard(build_scorecard(ledger))
        assert "kr_veloc.overhead_pct.mean" in flat
        assert not any("recovery_latency" in k for k in flat)

    def test_format_smoke(self):
        text = format_scorecard(build_scorecard(make_ledger()))
        assert "kr_veloc" in text and "[" in text


class TestRegressions:
    def test_direction_up_and_down(self):
        assert metric_direction("s.overhead_pct.mean") == "up"
        assert metric_direction("s.efficiency.p95") == "down"

    def test_no_change_passes(self):
        sc = build_scorecard(make_ledger())
        rows, failing = scorecard_regressions(sc, sc, budget=0.0)
        assert rows and failing == []

    def test_worse_overhead_fails(self):
        base = build_scorecard(make_ledger())
        cur = build_scorecard(make_ledger(walls=(30.0, 33.0, 31.0)))
        _rows, failing = scorecard_regressions(base, cur, budget=0.10)
        assert any("overhead_pct" in d.name for d in failing)

    def test_efficiency_drop_fails_despite_down_direction(self):
        base = build_scorecard(make_ledger())
        cur = build_scorecard(make_ledger(walls=(40.0, 44.0, 42.0)))
        _rows, failing = scorecard_regressions(base, cur, budget=0.10)
        assert any("efficiency" in d.name for d in failing)

    def test_improvement_passes(self):
        base = build_scorecard(make_ledger())
        cur = build_scorecard(make_ledger(walls=(15.0, 16.0, 15.5)))
        _rows, failing = scorecard_regressions(base, cur, budget=0.05)
        assert failing == []

    def test_vanished_strategy_is_structural(self):
        base = build_scorecard(make_ledger())
        empty = build_scorecard(CampaignLedger())
        _rows, failing = scorecard_regressions(base, empty, budget=99.0)
        assert failing and all(d.structural for d in failing)


class TestAnomalies:
    def test_clean_campaign_has_no_flags(self):
        assert flag_anomalies(make_ledger()) == []

    def test_wall_time_outlier_flagged(self):
        ledger = make_ledger()
        for i in range(5):
            ledger.add_run(record(label=f"kr/r4/x{i}", seed=10 + i,
                                  wall=20.0 + 0.01 * i))
        ledger.add_run(record(label="kr/r4/weird", seed=99, wall=80.0))
        flags = flag_anomalies(ledger, z_threshold=2.0)
        assert any("kr/r4/weird" in f and "outlier" in f for f in flags)

    def test_violations_flagged(self):
        ledger = make_ledger()
        ledger.runs[1].violations = 2
        flags = flag_anomalies(ledger)
        assert any("violation" in f for f in flags)

    def _bench(self, mean_s):
        return {"benchmarks": [
            {"name": BENCH_ANCHOR, "stats": {"mean": mean_s}},
        ]}

    def test_host_anomaly_flagged_against_anchor(self):
        ledger = make_ledger()
        for r in ledger.runs:
            r.n_iters = 30
            r.host_seconds = 100.0  # absurd for 4 ranks x 30 iters
        # anchor: BENCH_ANCHOR_RANK_ITERS units in 0.03s host
        flags = flag_anomalies(ledger, bench=self._bench(0.03))
        assert any("host anomaly" in f for f in flags)
        assert any("environment" in f for f in flags)

    def test_normal_host_cost_not_flagged(self):
        ledger = make_ledger()
        for r in ledger.runs:
            r.n_iters = 30
            # exactly the anchor's per-unit cost
            r.host_seconds = 0.03 * (r.n_ranks * 30) / BENCH_ANCHOR_RANK_ITERS
        assert flag_anomalies(ledger, bench=self._bench(0.03)) == []

    def test_cached_runs_skip_host_check(self):
        ledger = make_ledger()
        for r in ledger.runs:
            r.n_iters = 30
            r.host_seconds = 100.0
            r.cached = True
        assert flag_anomalies(ledger, bench=self._bench(0.03)) == []

    def test_missing_anchor_reported_not_silent(self):
        flags = flag_anomalies(make_ledger(), bench={"benchmarks": []})
        assert any("anchor" in f and "skipped" in f for f in flags)
