"""`python -m repro.report` end-to-end: run, render, scorecard, diff.

One small seeded campaign (module-scoped) feeds every subcommand test;
the run itself doubles as the acceptance check that the live-progress
JSONL reconciles exactly with the ledger.
"""

import json
import re

import pytest

from repro.report.__main__ import main
from repro.report.compare import EXIT_BAD_INPUT, EXIT_OK, EXIT_REGRESSION
from repro.report.ledger import CampaignLedger

RUN_ARGS = ["run", "--seeds", "2,3", "--ranks", "4", "--iters", "24",
            "--max-failures", "2", "--jobs", "2", "--no-exemplars",
            "--bench", ""]


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    out = tmp_path_factory.mktemp("report-out")
    cache = tmp_path_factory.mktemp("cache")
    code = main([*RUN_ARGS, "--out", str(out), "--cache-dir", str(cache)])
    assert code == EXIT_OK
    return out


class TestRun:
    def test_artifacts_written(self, campaign):
        for name in ("report.html", "campaign.json", "scorecard.json",
                     "progress.jsonl"):
            assert (campaign / name).exists(), name

    def test_progress_jsonl_reconciles_with_ledger(self, campaign):
        """The acceptance criterion: one cell_done per ledger run."""
        events = [json.loads(line) for line in
                  (campaign / "progress.jsonl").read_text().splitlines()]
        ledger = CampaignLedger.load(campaign / "campaign.json")
        done = [e for e in events if e["event"] == "cell_done"]
        assert len(done) == ledger.cells()
        (start,) = [e for e in events if e["event"] == "campaign_start"]
        assert start["jobs"] == 2
        (end,) = [e for e in events if e["event"] == "campaign_end"]
        assert end["total"] == ledger.cells()
        assert end["cached"] + end["fresh"] + end["failed"] == \
            ledger.cells()
        # per-event invariants of the stream contract
        for e in done:
            assert e["state"] in ("cached", "fresh", "failed")
            assert 0.0 <= e["utilization"] <= 1.0

    def test_ledger_provenance_matches_stream(self, campaign):
        ledger = CampaignLedger.load(campaign / "campaign.json")
        assert ledger.progress["cells"] == ledger.cells()
        assert (ledger.progress["cache_hits"]
                + ledger.progress["cache_misses"]) == ledger.cells()

    def test_multi_seed_multi_strategy_cis(self, campaign):
        sc = json.loads((campaign / "scorecard.json").read_text())
        strategies = sc["strategies"]
        assert set(strategies) == {"kr_veloc", "fenix_kr_veloc"}
        for entry in strategies.values():
            assert entry["n_runs"] == 2  # two seeds
            for metric in ("overhead_pct", "recovery_latency_s"):
                m = entry["metrics"][metric]
                assert m["n"] > 0
                assert m["ci_lo"] <= m["mean"] <= m["ci_hi"]

    def test_html_is_self_contained(self, campaign):
        html = (campaign / "report.html").read_text()
        assert not re.search(r'(?:src|href)\s*=\s*"https?:', html)
        assert "kr_veloc" in html and "<svg" in html


class TestRender:
    def test_render_from_ledger(self, campaign, tmp_path):
        out = tmp_path / "r.html"
        assert main(["render", str(campaign / "campaign.json"),
                     "--out", str(out)]) == EXIT_OK
        assert "<svg" in out.read_text()

    def test_bad_ledger_exits_two(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["render", str(bad), "--out",
                     str(tmp_path / "r.html")]) == EXIT_BAD_INPUT


class TestScorecard:
    def test_prints_and_writes_json(self, campaign, tmp_path, capsys):
        out = tmp_path / "sc.json"
        assert main(["scorecard", str(campaign / "campaign.json"),
                     "--json", str(out)]) == EXIT_OK
        assert "Resilience scorecard" in capsys.readouterr().out
        assert "strategies" in json.loads(out.read_text())


class TestDiff:
    def test_identical_passes(self, campaign, capsys):
        sc = str(campaign / "scorecard.json")
        assert main(["diff", sc, sc]) == EXIT_OK
        assert "within the" in capsys.readouterr().out

    def test_accepts_ledger_as_either_side(self, campaign):
        assert main(["diff", str(campaign / "scorecard.json"),
                     str(campaign / "campaign.json")]) == EXIT_OK

    def test_regression_past_budget_fails(self, campaign, tmp_path,
                                          capsys):
        sc = json.loads((campaign / "scorecard.json").read_text())
        m = sc["strategies"]["kr_veloc"]["metrics"]["recovery_latency_s"]
        m["mean"] *= 2.0
        worse = tmp_path / "worse.json"
        worse.write_text(json.dumps(sc))
        code = main(["diff", str(campaign / "scorecard.json"),
                     str(worse), "--budget", "0.10"])
        assert code == EXIT_REGRESSION
        captured = capsys.readouterr()
        assert "kr_veloc.recovery_latency_s.mean" in captured.out
        assert "OVER-BUDGET" in captured.out

    def test_tolerance_alias_accepted(self, campaign):
        sc = str(campaign / "scorecard.json")
        assert main(["diff", sc, sc, "--tolerance", "0.10"]) == EXIT_OK

    def test_unreadable_input_exits_two(self, campaign, tmp_path):
        assert main(["diff", str(tmp_path / "missing.json"),
                     str(campaign / "scorecard.json")]) == EXIT_BAD_INPUT
