"""Incremental, content-addressed checkpoint data path.

Three layers under test: copy-on-write :class:`ChunkedSnapshot` building
(only dirty chunks copied, clean chunks shared by reference), the node
server's content-addressed chunk index (novel-chunk accounting and PFS
flush sizing), and the client end to end -- with bit-for-bit restore
equivalence between ``incremental=True`` and ``incremental=False`` as
the correctness bar.
"""

import numpy as np
import pytest

from repro.kokkos import KokkosRuntime
from repro.util.errors import ConfigError
from repro.veloc import VeloCConfig
from repro.veloc.snapshot import ChunkedSnapshot, payload_array, snapshot_view
from tests.veloc.conftest import run_veloc_ranks


@pytest.fixture
def rt():
    return KokkosRuntime()


def small_view(rt, label="v"):
    # 64x16 float64, 512-byte chunks -> 16 chunks of 4 rows
    return rt.view(label, shape=(64, 16), chunk_bytes=512)


class TestSnapshotView:
    def test_first_snapshot_copies_everything(self, rt):
        v = small_view(rt)
        v.fill(1.0)
        snap, fresh = snapshot_view(v)
        assert fresh == list(range(16))
        assert np.array_equal(snap.materialize(), v.copy_data())

    def test_cow_copies_only_dirty_chunks(self, rt):
        v = small_view(rt)
        prev, _ = snapshot_view(v)
        v.clear_dirty()
        v[5] = 2.0  # chunk 1
        snap, fresh = snapshot_view(v, prev=prev)
        assert fresh == [1]
        # clean chunks alias the previous snapshot's objects
        assert all(
            snap.chunks[i] is prev.chunks[i] for i in range(16) if i != 1
        )
        assert snap.chunks[1] is not prev.chunks[1]
        assert np.array_equal(snap.materialize(), v.copy_data())

    def test_cow_base_is_immutable_under_later_writes(self, rt):
        v = small_view(rt)
        v.fill(1.0)
        snap, _ = snapshot_view(v)
        v.clear_dirty()
        v[0] = 9.0
        # the snapshot still materializes the pre-write contents
        assert np.all(snap.materialize() == 1.0)

    def test_incompatible_prev_forces_full_copy(self, rt):
        v = small_view(rt)
        other = rt.view("other", shape=(8, 16), chunk_bytes=512)
        prev, _ = snapshot_view(other)
        v.clear_dirty()
        snap, fresh = snapshot_view(v, prev=prev)
        assert fresh == list(range(16))

    def test_digests_reused_for_clean_chunks(self, rt):
        v = small_view(rt)
        prev, _ = snapshot_view(v, hash_chunks=True)
        v.clear_dirty()
        v[0] = 4.0
        snap, fresh = snapshot_view(v, prev=prev, hash_chunks=True)
        assert fresh == [0]
        assert snap.digests[0] != prev.digests[0]
        assert all(snap.digests[i] is prev.digests[i] for i in range(1, 16))

    def test_non_chunkable_single_chunk(self):
        from repro.kokkos.view import View

        base = np.arange(64.0).reshape(8, 8)
        v = View("nc", data=base[:, ::2])  # not C-contiguous
        snap, fresh = snapshot_view(v, hash_chunks=True)
        assert fresh == [0]
        assert snap.n_chunks == 1
        assert np.array_equal(snap.materialize(), base[:, ::2])

    def test_payload_array_accepts_both_formats(self, rt):
        v = small_view(rt)
        v.fill(3.0)
        snap, _ = snapshot_view(v)
        assert isinstance(snap, ChunkedSnapshot)
        assert np.array_equal(payload_array(snap), v.copy_data())
        assert np.array_equal(payload_array(v.copy_data()), v.copy_data())


class TestConfig:
    def test_dedup_requires_incremental(self):
        with pytest.raises(ConfigError):
            VeloCConfig(incremental=False, dedup=True)

    def test_full_copy_arm(self):
        cfg = VeloCConfig(incremental=False, dedup=False)
        assert not cfg.incremental


class TestClientIncremental:
    def test_steady_state_dirty_bytes_scale_with_writes(self):
        def body(client, h, rt):
            v = rt.view("x", shape=(64, 16), chunk_bytes=512,
                        modeled_nbytes=1.6e6)
            client.mem_protect(0, v)
            yield from client.checkpoint(0)  # full by construction
            v[5] = 1.0  # one of 16 chunks
            yield from client.checkpoint(1)
            return dict(client.stats)

        results, _ = run_veloc_ranks(1, body)
        stats = results[0]
        assert stats["checkpoint_bytes"] == pytest.approx(3.2e6)
        # full first version + 1/16 of the second
        assert stats["dirty_bytes"] == pytest.approx(1.6e6 * (1 + 1 / 16))

    def test_incremental_checkpoint_is_cheaper(self):
        def run(incremental):
            def body(client, h, rt):
                v = rt.view("x", shape=(64, 16), chunk_bytes=512,
                            modeled_nbytes=1e9)
                client.mem_protect(0, v)
                yield from client.checkpoint(0)
                t0 = h.ctx.engine.now
                v[5] = 1.0
                yield from client.checkpoint(1)
                return h.ctx.engine.now - t0

            cfg = VeloCConfig(mode="single", incremental=incremental,
                              dedup=incremental)
            results, _ = run_veloc_ranks(1, body, config=cfg)
            return results[0]

        assert run(True) < 0.25 * run(False)

    def test_restore_bit_identical_to_full_copy(self):
        rng_seed = 1234

        def run(incremental):
            def body(client, h, rt):
                rng = np.random.default_rng(rng_seed)
                v = rt.view("x", shape=(64, 16), chunk_bytes=512)
                v.load_data(rng.standard_normal((64, 16)))
                client.mem_protect(0, v)
                yield from client.checkpoint(0)
                for version in range(1, 4):
                    # partial tracked updates between checkpoints
                    v[version * 3] = rng.standard_normal(16)
                    v[40:48] = rng.standard_normal((8, 16))
                    yield from client.checkpoint(version)
                v.fill(np.nan)  # "lose" the data
                yield from client.recover(3)
                return v.copy_data()

            cfg = VeloCConfig(mode="single", incremental=incremental,
                              dedup=incremental)
            results, _ = run_veloc_ranks(1, body, config=cfg)
            return results[0]

        full, incr = run(False), run(True)
        assert full.tobytes() == incr.tobytes()  # bit-for-bit

    def test_restore_marks_view_dirty_again(self):
        def body(client, h, rt):
            v = rt.view("x", shape=(64, 16), chunk_bytes=512)
            client.mem_protect(0, v)
            yield from client.checkpoint(0)
            assert v.dirty_fraction == 0.0
            yield from client.recover(0)
            # post-restore the next checkpoint must be a full copy
            assert v.dirty_fraction == 1.0
            yield from client.checkpoint(1)
            return dict(client.stats)

        results, _ = run_veloc_ranks(1, body)
        stats = results[0]
        assert stats["dirty_bytes"] == pytest.approx(
            stats["checkpoint_bytes"])

    def test_recover_intermediate_version_exact(self):
        # version v's image must reflect exactly the first v+1 rounds of
        # updates even though later snapshots shared most of its chunks
        def body(client, h, rt):
            v = rt.view("x", shape=(64, 16), chunk_bytes=512)
            client.mem_protect(0, v)
            expected = None
            for version in range(3):
                v[version * 4] = float(version + 1)
                if version == 1:
                    expected = v.copy_data()
                yield from client.checkpoint(version)
            yield from client.recover(1)
            return v.copy_data(), expected

        results, _ = run_veloc_ranks(1, body)
        got, expected = results[0]
        assert np.array_equal(got, expected)


class TestServerDedup:
    def test_register_chunks_counts_novel_once(self):
        def body(client, h, rt):
            server = client.service.server_for(client.ctx.node)
            novel1 = server.register_chunks([b"a", b"b", b"a"])
            novel2 = server.register_chunks([b"a", b"c"])
            return (novel1, novel2, server.chunks_seen,
                    server.chunks_deduped)
            yield  # pragma: no cover

        results, _ = run_veloc_ranks(1, body)
        novel1, novel2, seen, deduped = results[0]
        assert novel1 == 2  # "a" counted once within the batch
        assert novel2 == 1  # "a" already indexed
        assert seen == 5
        assert deduped == 2

    def test_identical_content_across_versions_flushes_nothing_new(self):
        def body(client, h, rt):
            # distinct per-chunk content, so version 0 is fully novel
            content = np.arange(1024.0).reshape(64, 16)
            v = rt.view("x", shape=(64, 16), chunk_bytes=512,
                        modeled_nbytes=1e6)
            v.load_data(content)
            client.mem_protect(0, v)
            yield from client.checkpoint(0)
            # rewrite identical content: dirty but not novel
            v.load_data(content)
            yield from client.checkpoint(1)
            return dict(client.stats)

        results, _ = run_veloc_ranks(1, body)
        stats = results[0]
        assert stats["dirty_bytes"] == pytest.approx(2e6)
        assert stats["novel_bytes"] == pytest.approx(1e6)

    def test_uniform_content_dedups_within_a_version(self):
        def body(client, h, rt):
            v = rt.view("x", shape=(64, 16), chunk_bytes=512,
                        modeled_nbytes=1.6e6)
            v.fill(2.0)  # all 16 chunks byte-identical
            client.mem_protect(0, v)
            yield from client.checkpoint(0)
            return dict(client.stats)

        results, _ = run_veloc_ranks(1, body)
        stats = results[0]
        assert stats["dirty_bytes"] == pytest.approx(1.6e6)
        # one novel chunk out of 16: the store keeps a single copy
        assert stats["novel_bytes"] == pytest.approx(1.6e6 / 16)

    def test_pfs_read_cost_unchanged_by_dedup(self):
        # dedup shrinks the flush, never the modelled recover read
        def body(client, h, rt):
            v = rt.view("x", shape=(64, 16), chunk_bytes=512,
                        modeled_nbytes=1e8)
            v.fill(2.0)
            client.mem_protect(0, v)
            yield from client.checkpoint(0)
            v.fill(2.0)  # dirty, fully deduped
            yield from client.checkpoint(1)
            yield from client.wait_flushes()
            client.ctx.node.wipe()
            t0 = h.ctx.engine.now
            yield from client.recover(1)
            return h.ctx.engine.now - t0

        results, _ = run_veloc_ranks(1, body, pfs_bw=1e8)
        # reading version 1 from the PFS must charge the full logical
        # size (~1s at 1e8 B/s), not the ~0 novel bytes it flushed
        assert results[0] > 0.5
