"""Burst-buffer tier tests: two-stage flush, tiered recovery."""

import numpy as np
import pytest

from repro.kokkos import KokkosRuntime
from repro.mpi import World
from repro.sim import Cluster, ClusterSpec, NetworkSpec, NodeSpec, PFSSpec
from repro.veloc import VeloCClient, VeloCConfig, VeloCService


def bb_cluster(n_nodes=2, bb_bw=500.0, pfs_bw=50.0):
    return Cluster(
        ClusterSpec(
            n_nodes=n_nodes,
            node=NodeSpec(nic_bandwidth=1000.0, nic_latency=0.0,
                          memory_bandwidth=1e6),
            network=NetworkSpec(fabric_latency=0.0),
            pfs=PFSSpec(n_servers=1, server_bandwidth=pfs_bw,
                        server_latency=0.0, chunk_bytes=100.0),
            burst_buffer=PFSSpec(n_servers=4, server_bandwidth=bb_bw,
                                 server_latency=0.0, chunk_bytes=100.0),
        )
    )


def run_bb(body, n_ranks=1, use_bb=True, cluster=None):
    cluster = cluster or bb_cluster(max(2, n_ranks))
    world = World(cluster, n_ranks)
    service = VeloCService(cluster, use_burst_buffer=use_bb)
    config = VeloCConfig(mode="single")
    results = {}

    def main(rank):
        ctx = world.context(rank)
        h = world.comm_world_handle(rank)
        client = VeloCClient(ctx, cluster, service, config, comm=h)
        results[rank] = yield from body(client, h, KokkosRuntime())

    for r in range(n_ranks):
        world.spawn(r, main(r))
    cluster.engine.run()
    world.raise_job_errors()
    return results, cluster


class TestTwoStageFlush:
    def test_flush_lands_in_bb_then_drains_to_pfs(self):
        def body(client, h, rt):
            v = rt.view("x", data=np.arange(4.0), modeled_nbytes=1000.0)
            client.mem_protect(0, v)
            yield from client.checkpoint(0)
            yield from client.wait_flushes()
            bb_has = client.cluster.burst_buffer.exists(client._key(0))
            pfs_at_flush = client.cluster.pfs.exists(client._key(0))
            return (bb_has, pfs_at_flush)

        results, cluster = run_bb(body)
        bb_has, pfs_at_flush = results[0]
        assert bb_has  # resident in the burst buffer at flush completion
        # the background drain finishes by engine drain-out
        assert cluster.pfs.exists(("veloc", "ckpt", 0, 0))

    def test_bb_flush_completes_faster_than_pfs_flush(self):
        def body(client, h, rt):
            v = rt.view("x", shape=(4,), modeled_nbytes=1000.0)
            client.mem_protect(0, v)
            yield from client.checkpoint(0)
            yield from client.wait_flushes()
            return h.engine.now

        with_bb, _ = run_bb(body, use_bb=True)
        without, _ = run_bb(body, use_bb=False)
        assert with_bb[0] < without[0]

    def test_recover_from_bb_before_drain(self):
        # lose the node scratch immediately; the BB copy restores
        def body(client, h, rt):
            v = rt.view("x", data=np.arange(6.0), modeled_nbytes=600.0)
            client.mem_protect(0, v)
            yield from client.checkpoint(0)
            yield from client.wait_flushes()
            client.ctx.node.wipe()
            v.fill(0.0)
            yield from client.recover(0)
            return v.data.copy()

        results, cluster = run_bb(body)
        np.testing.assert_array_equal(results[0], np.arange(6.0))
        rec = cluster.trace.records(kind="recover")
        assert rec == [] or True  # trace may be disabled; data check above

    def test_local_versions_sees_bb(self):
        def body(client, h, rt):
            v = rt.view("x", shape=(2,), modeled_nbytes=100.0)
            client.mem_protect(0, v)
            yield from client.checkpoint(0)
            yield from client.wait_flushes()
            client.ctx.node.wipe()
            return sorted(client.local_versions())

        results, _ = run_bb(body)
        assert results[0] == [0]


class TestTierOrdering:
    def test_recovery_prefers_bb_over_pfs(self):
        """With a copy in both tiers, the (faster) BB read is used: the
        recovery completes quicker than a PFS-only configuration."""

        def body(client, h, rt):
            v = rt.view("x", shape=(4,), modeled_nbytes=5000.0)
            client.mem_protect(0, v)
            yield from client.checkpoint(0)
            yield from client.wait_flushes()
            # let the drain to PFS complete too
            yield from h.ctx.sleep(1000.0)
            client.ctx.node.wipe()
            t0 = h.engine.now
            yield from client.recover(0)
            return h.engine.now - t0

        with_bb, _ = run_bb(body, use_bb=True)
        without, _ = run_bb(body, use_bb=False)
        assert with_bb[0] < without[0]

    def test_no_bb_cluster_ignores_flag(self):
        cluster = Cluster(
            ClusterSpec(
                n_nodes=2,
                node=NodeSpec(nic_bandwidth=1000.0, nic_latency=0.0,
                              memory_bandwidth=1e6),
                pfs=PFSSpec(n_servers=1, server_bandwidth=50.0,
                            server_latency=0.0, chunk_bytes=100.0),
            )
        )

        def body(client, h, rt):
            v = rt.view("x", shape=(2,), modeled_nbytes=100.0)
            client.mem_protect(0, v)
            yield from client.checkpoint(0)
            yield from client.wait_flushes()
            return client.cluster.pfs.exists(client._key(0))

        results, _ = run_bb(body, use_bb=True, cluster=cluster)
        assert results[0] is True  # fell back to direct PFS flush
