"""VeloC server behaviour: async draining, congestion, sharing."""

import numpy as np
import pytest

from repro.veloc import VeloCService
from tests.veloc.conftest import run_veloc_ranks, veloc_cluster


class TestServerLifecycle:
    def test_one_server_per_node(self):
        cluster = veloc_cluster(3)
        service = VeloCService(cluster)
        s0 = service.server_for(cluster.node(0))
        s0_again = service.server_for(cluster.node(0))
        s1 = service.server_for(cluster.node(1))
        assert s0 is s0_again
        assert s0 is not s1
        assert set(service.servers) == {0, 1}

    def test_jobs_drain_in_fifo_order(self):
        cluster = veloc_cluster(1)
        service = VeloCService(cluster)
        server = service.server_for(cluster.node(0))
        done_order = []

        def submitter():
            evs = []
            for i in range(3):
                ev = server.submit(("k", i), f"payload{i}", 1e6)
                ev.add_callback(lambda _e, i=i: done_order.append(i))
                evs.append(ev)
            yield cluster.engine.all_of(evs)

        cluster.engine.process(submitter())
        cluster.engine.run()
        assert done_order == [0, 1, 2]
        assert server.jobs_done == 3
        assert server.bytes_flushed == 3e6

    def test_backlog_counter(self):
        cluster = veloc_cluster(1)
        service = VeloCService(cluster)
        server = service.server_for(cluster.node(0))
        server.submit(("a",), None, 1e6)
        server.submit(("b",), None, 1e6)
        # server proc hasn't run yet at t=0 before engine.run
        assert server.backlog == 2
        cluster.engine.run()
        assert server.backlog == 0


class TestCongestion:
    def test_flush_delays_application_messages(self):
        """The Figure-5 effect: async flushes make app MPI slower."""

        def body_with_ckpt(client, h, rt):
            v = rt.view("x", shape=(8,), modeled_nbytes=2e8)
            client.mem_protect(0, v)
            yield from client.checkpoint(0)
            # now exchange a large message while the flush is in flight
            partner = 1 - h.rank
            t0 = h.engine.now
            yield from h.sendrecv(None, dest=partner, source=partner, nbytes=1e7)
            return h.engine.now - t0

        def body_without(client, h, rt):
            partner = 1 - h.rank
            t0 = h.engine.now
            yield from h.sendrecv(None, dest=partner, source=partner, nbytes=1e7)
            return h.engine.now - t0

        slow, _ = run_veloc_ranks(2, body_with_ckpt, pfs_bw=1e8)
        fast, _ = run_veloc_ranks(2, body_without, pfs_bw=1e8)
        assert slow[0] > fast[0]

    def test_shared_node_server_serializes_ranks(self):
        # two ranks on one node share the server; their flushes queue.
        def body(client, h, rt):
            v = rt.view("x", shape=(4,), modeled_nbytes=1e8)
            # distinct content per rank: the shared server's chunk dedup
            # must not turn the second flush into a no-op
            v.fill(float(h.rank) + 1.0)
            client.mem_protect(0, v)
            yield from client.checkpoint(0)
            yield from client.wait_flushes()
            return h.engine.now

        results, _ = run_veloc_ranks(2, body, n_nodes=1, pfs_bw=1e8)
        times = sorted(results.values())
        # second flush completes roughly one flush-duration after the first
        assert times[1] >= times[0] + 0.5
