"""VeloC client behaviour: protect, checkpoint, query, recover."""

import numpy as np
import pytest

from repro.mpi import World
from repro.kokkos import KokkosRuntime
from repro.util.errors import ConfigError
from repro.util.timing import CHECKPOINT_FUNCTION, DATA_RECOVERY
from repro.veloc import VeloCClient, VeloCConfig, VeloCService
from repro.veloc.client import VeloCError
from tests.veloc.conftest import run_veloc_ranks, veloc_cluster


class TestProtect:
    def test_protect_and_total(self):
        def body(client, h, rt):
            v = rt.view("state", shape=(100,))
            client.mem_protect(0, v)
            assert client.protected_nbytes() == 800.0
            client.mem_unprotect(0)
            assert client.protected_nbytes() == 0.0
            return "ok"
            yield  # pragma: no cover

        results, _ = run_veloc_ranks(1, body)
        assert results[0] == "ok"

    def test_conflicting_region_id_rejected(self):
        def body(client, h, rt):
            client.mem_protect(0, rt.view("a", shape=(2,)))
            with pytest.raises(ConfigError):
                client.mem_protect(0, rt.view("b", shape=(2,)))
            return "ok"
            yield  # pragma: no cover

        results, _ = run_veloc_ranks(1, body)
        assert results[0] == "ok"

    def test_checkpoint_without_regions_rejected(self):
        def body(client, h, rt):
            with pytest.raises(VeloCError):
                yield from client.checkpoint(0)
            return "ok"

        results, _ = run_veloc_ranks(1, body)
        assert results[0] == "ok"


class TestCheckpointRecover:
    def test_roundtrip_from_scratch(self):
        def body(client, h, rt):
            v = rt.view("state", data=np.arange(10.0))
            client.mem_protect(0, v)
            yield from client.checkpoint(0)
            v.fill(-1.0)
            yield from client.recover(0)
            return v.data.copy()

        results, _ = run_veloc_ranks(1, body)
        assert np.array_equal(results[0], np.arange(10.0))

    def test_multiple_regions(self):
        def body(client, h, rt):
            a = rt.view("a", data=np.ones(4))
            b = rt.view("b", data=np.full(6, 2.0))
            client.mem_protect(1, a)
            client.mem_protect(2, b)
            yield from client.checkpoint(0)
            a.fill(0)
            b.fill(0)
            yield from client.recover(0)
            return (a.data.sum(), b.data.sum())

        results, _ = run_veloc_ranks(1, body)
        assert results[0] == (4.0, 12.0)

    def test_versions_are_independent(self):
        def body(client, h, rt):
            v = rt.view("x", data=np.zeros(4))
            client.mem_protect(0, v)
            for version in range(3):
                v.fill(float(version))
                yield from client.checkpoint(version)
            yield from client.recover(1)
            return float(v.data[0])

        results, _ = run_veloc_ranks(1, body)
        assert results[0] == 1.0

    def test_recover_missing_version_raises(self):
        def body(client, h, rt):
            v = rt.view("x", shape=(2,))
            client.mem_protect(0, v)
            with pytest.raises(VeloCError):
                yield from client.recover(7)
            return "ok"

        results, _ = run_veloc_ranks(1, body)
        assert results[0] == "ok"

    def test_recover_from_pfs_after_scratch_loss(self):
        # Simulates a replacement process: scratch gone, PFS survives.
        def body(client, h, rt):
            v = rt.view("x", data=np.arange(8.0))
            client.mem_protect(0, v)
            yield from client.checkpoint(0)
            yield from client.wait_flushes()
            client.ctx.node.wipe()  # lose scratch
            v.fill(0.0)
            yield from client.recover(0)
            return v.data.copy()

        results, _ = run_veloc_ranks(1, body)
        assert np.array_equal(results[0], np.arange(8.0))

    def test_pfs_recover_refills_scratch(self):
        def body(client, h, rt):
            v = rt.view("x", data=np.ones(4))
            client.mem_protect(0, v)
            yield from client.checkpoint(0)
            yield from client.wait_flushes()
            client.ctx.node.wipe()
            yield from client.recover(0)
            return client.can_recover_locally(0)

        results, _ = run_veloc_ranks(1, body)
        assert results[0] is True

    def test_time_accounting(self):
        def body(client, h, rt):
            v = rt.view("x", shape=(10,), modeled_nbytes=1e8)
            client.mem_protect(0, v)
            yield from client.checkpoint(0)
            yield from client.recover(0)
            acct = client.ctx.account
            return (acct.get(CHECKPOINT_FUNCTION), acct.get(DATA_RECOVERY))

        results, _ = run_veloc_ranks(1, body)
        ckpt_t, rec_t = results[0]
        assert ckpt_t == pytest.approx(1e8 / 1e10)  # one memcpy
        assert rec_t == pytest.approx(1e8 / 1e10)


class TestAsyncFlush:
    def test_checkpoint_returns_before_flush(self):
        def body(client, h, rt):
            v = rt.view("x", shape=(10,), modeled_nbytes=1e8)
            client.mem_protect(0, v)
            yield from client.checkpoint(0)
            t_after_ckpt = h.engine.now
            pending = client.flush_pending()
            yield from client.wait_flushes()
            t_after_flush = h.engine.now
            return (t_after_ckpt, pending, t_after_flush)

        results, _ = run_veloc_ranks(1, body, pfs_bw=1e8)
        t_ckpt, pending, t_flush = results[0]
        assert pending == [0]
        # flush (1e8 bytes at 1e8 B/s ~ 1s) far exceeds the sync memcpy
        assert t_flush - t_ckpt > 0.5
        assert t_ckpt < 0.1

    def test_scratch_gc_keeps_recent(self):
        def body(client, h, rt):
            v = rt.view("x", shape=(4,))
            client.mem_protect(0, v)
            for version in range(5):
                yield from client.checkpoint(version)
            return sorted(
                k[2] for k in client.ctx.node.scratch if k[0] == "veloc"
            )

        results, _ = run_veloc_ranks(1, body)
        assert results[0] == [3, 4]  # keep_versions=2

    def test_local_versions_includes_pfs(self):
        def body(client, h, rt):
            v = rt.view("x", shape=(4,))
            client.mem_protect(0, v)
            for version in range(4):
                yield from client.checkpoint(version)
            yield from client.wait_flushes()
            client.ctx.node.wipe()
            return sorted(client.local_versions())

        results, _ = run_veloc_ranks(1, body)
        assert results[0] == [0, 1, 2, 3]


class TestRestartTest:
    def test_single_mode_local_only(self):
        def body(client, h, rt):
            v = rt.view("x", shape=(4,))
            client.mem_protect(0, v)
            assert client.restart_test() == -1
            yield from client.checkpoint(0)
            yield from client.checkpoint(1)
            return client.restart_test()

        results, _ = run_veloc_ranks(2, body, mode="single")
        assert all(v == 1 for v in results.values())

    def test_collective_mode_intersects(self):
        # rank 1 misses version 1: the collective answer must be 0.
        def body(client, h, rt):
            v = rt.view("x", shape=(4,))
            client.mem_protect(0, v)
            yield from client.checkpoint(0)
            if h.rank == 0:
                yield from client.checkpoint(1)
            best = yield from client.restart_test()
            return best

        results, _ = run_veloc_ranks(2, body, mode="collective")
        assert all(v == 0 for v in results.values())

    def test_collective_mode_requires_comm(self):
        cluster = veloc_cluster(1)
        world = World(cluster, 1)
        service = VeloCService(cluster)
        with pytest.raises(ConfigError):
            VeloCClient(
                world.context(0), cluster, service,
                VeloCConfig(mode="collective"), comm=None,
            )

    def test_rank_identity_hooks(self):
        def body(client, h, rt):
            client.set_rank(7)
            assert client.veloc_rank == 7
            client.set_comm(h)
            assert client.veloc_rank == h.rank
            return "ok"
            yield  # pragma: no cover

        results, _ = run_veloc_ranks(1, body)
        assert results[0] == "ok"
