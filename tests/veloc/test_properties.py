"""Property-based tests: checkpoint/restore is the identity on data."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.kokkos import KokkosRuntime
from tests.veloc.conftest import run_veloc_ranks

arrays = st.one_of(
    hnp.arrays(
        dtype=np.float64,
        shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=8),
        elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    ),
    hnp.arrays(
        dtype=np.int64,
        shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=8),
        elements=st.integers(min_value=-(2**40), max_value=2**40),
    ),
)


@settings(max_examples=20, deadline=None)
@given(data=arrays)
def test_checkpoint_restore_roundtrip(data):
    def body(client, h, rt):
        v = rt.view("payload", data=data.copy())
        client.mem_protect(0, v)
        yield from client.checkpoint(0)
        v.data[...] = 0
        yield from client.recover(0)
        return v.data.copy()

    results, _ = run_veloc_ranks(1, body)
    np.testing.assert_array_equal(results[0], data)


@settings(max_examples=10, deadline=None)
@given(data=arrays, n_versions=st.integers(min_value=1, max_value=4))
def test_latest_version_restores_newest(data, n_versions):
    def body(client, h, rt):
        v = rt.view("payload", data=data.copy())
        client.mem_protect(0, v)
        for version in range(n_versions):
            v.data[...] = data + version if data.dtype.kind == "f" else data
            yield from client.checkpoint(version)
        best = client.restart_test()
        return best

    results, _ = run_veloc_ranks(1, body, mode="single")
    assert results[0] == n_versions - 1


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    shape=hnp.array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=16),
)
def test_pfs_roundtrip_after_scratch_loss(seed, shape):
    rng = np.random.default_rng(seed)
    data = rng.random(shape)

    def body(client, h, rt):
        v = rt.view("payload", data=data.copy())
        client.mem_protect(0, v)
        yield from client.checkpoint(0)
        yield from client.wait_flushes()
        client.ctx.node.wipe()
        v.data[...] = -1
        yield from client.recover(0)
        return v.data.copy()

    results, _ = run_veloc_ranks(1, body)
    np.testing.assert_array_equal(results[0], data)
