"""Shared fixtures for VeloC tests."""

import numpy as np
import pytest

from repro.kokkos import KokkosRuntime
from repro.mpi import World
from repro.sim import Cluster, ClusterSpec, NetworkSpec, NodeSpec, PFSSpec
from repro.veloc import VeloCClient, VeloCConfig, VeloCService


def veloc_cluster(n_nodes=2, pfs_bw=1e8, n_servers=1):
    return Cluster(
        ClusterSpec(
            n_nodes=n_nodes,
            node=NodeSpec(nic_bandwidth=1e9, nic_latency=1e-6, memory_bandwidth=1e10),
            network=NetworkSpec(fabric_latency=0.0),
            pfs=PFSSpec(
                n_servers=n_servers,
                server_bandwidth=pfs_bw,
                server_latency=0.0,
                chunk_bytes=1e6,
            ),
        )
    )


def run_veloc_ranks(n_ranks, body, mode="single", n_nodes=None, config=None,
                    **cluster_kwargs):
    """Run body(client, handle, runtime) on each rank; returns results."""
    n_nodes = n_nodes or n_ranks
    cluster = veloc_cluster(n_nodes=n_nodes, **cluster_kwargs)
    rpn = max(1, -(-n_ranks // n_nodes))
    world = World(cluster, n_ranks, ranks_per_node=rpn)
    service = VeloCService(cluster)
    config = config or VeloCConfig(mode=mode)
    results = {}

    def main(rank):
        ctx = world.context(rank)
        handle = world.comm_world_handle(rank)
        client = VeloCClient(ctx, cluster, service, config, comm=handle)
        rt = KokkosRuntime()
        res = yield from body(client, handle, rt)
        results[rank] = res

    for r in range(n_ranks):
        world.spawn(r, main(r))
    cluster.engine.run()
    world.raise_job_errors()
    return results, cluster
