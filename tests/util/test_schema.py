"""Artifact schema stamping and the warn-on-mismatch contract."""

import warnings

import pytest

from repro import __version__
from repro.util.schema import ArtifactVersionWarning, stamp, warn_on_mismatch


def test_stamp_adds_schema_and_version():
    doc = stamp({"payload": 1}, 3)
    assert doc["schema"] == 3
    assert doc["repro_version"] == __version__
    assert doc["payload"] == 1


def test_stamp_does_not_mutate_the_input():
    payload = {"payload": 1}
    stamp(payload, 3)
    assert payload == {"payload": 1}


def test_mismatched_schema_warns_but_never_raises():
    with pytest.warns(ArtifactVersionWarning, match="schema 99"):
        warn_on_mismatch("test artifact", 1, found_schema=99)


def test_mismatched_version_warns():
    with pytest.warns(ArtifactVersionWarning, match="0.0.0"):
        warn_on_mismatch("test artifact", 1, found_schema=1,
                         found_version="0.0.0")


def test_matching_or_absent_provenance_is_silent():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        warn_on_mismatch("test artifact", 1, found_schema=1,
                         found_version=__version__)
        # pre-stamping artifacts carry neither field; readers stay quiet
        warn_on_mismatch("test artifact", 1)


def test_trace_file_header_is_stamped(tmp_path):
    from repro.monitor.trace_io import FORMAT_VERSION, read_trace, write_trace
    from repro.sim.trace import Trace

    trace = Trace()
    trace.emit(0.5, "veloc.rank0", "checkpoint", version=1)
    path = tmp_path / "t.jsonl"
    write_trace(str(path), trace)
    import json

    meta = json.loads(path.read_text().splitlines()[0])["meta"]
    assert meta["schema"] == FORMAT_VERSION
    assert meta["repro_version"] == __version__

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        read_trace(str(path))


def test_trace_reader_warns_on_foreign_schema(tmp_path):
    import json

    from repro.monitor.trace_io import read_trace

    path = tmp_path / "t.jsonl"
    path.write_text(json.dumps({"meta": {"version": 99}}) + "\n")
    with pytest.warns(ArtifactVersionWarning):
        read_trace(str(path))
