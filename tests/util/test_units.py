"""Unit tests for repro.util.units."""

import pytest
from hypothesis import given, strategies as st

from repro.util import ConfigError, GiB, KiB, MiB, format_size, format_time, parse_size


class TestParseSize:
    def test_plain_int(self):
        assert parse_size(4096) == 4096.0

    def test_plain_float(self):
        assert parse_size(1.5) == 1.5

    def test_bare_number_string(self):
        assert parse_size("2048") == 2048.0

    def test_binary_suffixes(self):
        assert parse_size("1KiB") == 1024.0
        assert parse_size("2MiB") == 2 * 1024.0**2
        assert parse_size("1GiB") == 1024.0**3

    def test_si_suffixes(self):
        assert parse_size("1KB") == 1000.0
        assert parse_size("16MB") == 16e6
        assert parse_size("1GB") == 1e9

    def test_case_and_whitespace_insensitive(self):
        assert parse_size(" 256 mb ") == 256e6
        assert parse_size("1gIb") == 1024.0**3

    def test_fractional_value(self):
        assert parse_size("0.5GiB") == 0.5 * 1024.0**3

    def test_bytes_suffix(self):
        assert parse_size("17b") == 17.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            parse_size(-1)
        with pytest.raises(ConfigError):
            parse_size("-5MB")

    def test_garbage_rejected(self):
        with pytest.raises(ConfigError):
            parse_size("banana")
        with pytest.raises(ConfigError):
            parse_size("12XB")
        with pytest.raises(ConfigError):
            parse_size("")

    @given(st.floats(min_value=0, max_value=1e15, allow_nan=False))
    def test_roundtrip_numeric(self, value):
        assert parse_size(value) == pytest.approx(value)


class TestFormatters:
    def test_format_size_bytes(self):
        assert format_size(17) == "17B"

    def test_format_size_binary_units(self):
        assert format_size(2 * KiB) == "2.0KiB"
        assert format_size(3 * MiB) == "3.0MiB"
        assert format_size(1.5 * GiB) == "1.5GiB"

    def test_format_time_ranges(self):
        assert format_time(0) == "0s"
        assert format_time(2.5e-6) == "2.5us"
        assert format_time(3.2e-3) == "3.2ms"
        assert format_time(12.0) == "12.00s"
