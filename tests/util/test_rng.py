"""Unit tests for the deterministic RNG factory."""

import numpy as np

from repro.util import SeedSequenceFactory


class TestSeedSequenceFactory:
    def test_same_label_same_stream(self):
        f = SeedSequenceFactory(42)
        a = f.stream("compute:rank0").random(8)
        b = f.stream("compute:rank0").random(8)
        assert np.array_equal(a, b)

    def test_different_labels_differ(self):
        f = SeedSequenceFactory(42)
        a = f.stream("compute:rank0").random(8)
        b = f.stream("compute:rank1").random(8)
        assert not np.array_equal(a, b)

    def test_different_roots_differ(self):
        a = SeedSequenceFactory(1).stream("x").random(8)
        b = SeedSequenceFactory(2).stream("x").random(8)
        assert not np.array_equal(a, b)

    def test_order_independence(self):
        f1 = SeedSequenceFactory(7)
        _ = f1.stream("first")
        late = f1.stream("second").random(4)
        f2 = SeedSequenceFactory(7)
        early = f2.stream("second").random(4)
        assert np.array_equal(late, early)

    def test_child_factories_independent(self):
        f = SeedSequenceFactory(9)
        a = f.child("jobA").stream("x").random(4)
        b = f.child("jobB").stream("x").random(4)
        assert not np.array_equal(a, b)

    def test_child_deterministic(self):
        a = SeedSequenceFactory(9).child("job").stream("x").random(4)
        b = SeedSequenceFactory(9).child("job").stream("x").random(4)
        assert np.array_equal(a, b)
