"""TimeAccount unit tests."""

import pytest

from repro.util.timing import (
    APP_COMPUTE,
    APP_MPI,
    CHECKPOINT_FUNCTION,
    RECOMPUTE,
    TimeAccount,
)


class TestCharging:
    def test_default_buckets(self):
        acct = TimeAccount()
        acct.charge("compute", 1.0)
        acct.charge("mpi", 2.0)
        assert acct.get(APP_COMPUTE) == 1.0
        assert acct.get(APP_MPI) == 2.0

    def test_unknown_kind_becomes_its_own_bucket(self):
        acct = TimeAccount()
        acct.charge("checkpoint_function", 0.5)
        assert acct.get(CHECKPOINT_FUNCTION) == 0.5

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            TimeAccount().charge("compute", -1.0)

    def test_total(self):
        acct = TimeAccount()
        acct.charge("compute", 1.0)
        acct.charge("mpi", 2.0)
        assert acct.total() == 3.0


class TestLabels:
    def test_label_redirects(self):
        acct = TimeAccount()
        with acct.label(RECOMPUTE):
            acct.charge("compute", 1.0)
            acct.charge("mpi", 0.5)
        assert acct.get(RECOMPUTE) == 1.5
        assert acct.get(APP_COMPUTE) == 0.0

    def test_nested_labels_innermost_wins(self):
        acct = TimeAccount()
        with acct.label(RECOMPUTE):
            with acct.label("force_compute"):
                acct.charge("compute", 1.0)
            acct.charge("compute", 2.0)
        assert acct.get("force_compute") == 1.0
        assert acct.get(RECOMPUTE) == 2.0

    def test_label_restored_after_exception(self):
        acct = TimeAccount()
        with pytest.raises(RuntimeError):
            with acct.label("x"):
                raise RuntimeError
        assert acct.active_label is None

    def test_active_label(self):
        acct = TimeAccount()
        assert acct.active_label is None
        with acct.label("a"):
            assert acct.active_label == "a"


class TestMerge:
    def test_merge_max(self):
        a, b = TimeAccount(), TimeAccount()
        a.charge("compute", 1.0)
        b.charge("compute", 3.0)
        b.charge("mpi", 1.0)
        a.merge_max(b)
        assert a.get(APP_COMPUTE) == 3.0
        assert a.get(APP_MPI) == 1.0

    def test_merge_sum(self):
        a, b = TimeAccount(), TimeAccount()
        a.charge("compute", 1.0)
        b.charge("compute", 2.0)
        a.merge_sum(b)
        assert a.get(APP_COMPUTE) == 3.0

    def test_snapshot_is_copy(self):
        acct = TimeAccount()
        acct.charge("compute", 1.0)
        snap = acct.snapshot()
        acct.charge("compute", 1.0)
        assert snap[APP_COMPUTE] == 1.0


class TestRecomputeNesting:
    """Labels nested under ``recompute`` (MiniMD's phase labels override
    the recompute label; plain charges stay in recompute)."""

    def test_phase_label_under_recompute_wins(self):
        acct = TimeAccount()
        with acct.label(RECOMPUTE):
            with acct.label("force_compute"):
                acct.charge("compute", 2.0)
            with acct.label("neighboring"):
                acct.charge("compute", 0.5)
            acct.charge("mpi", 1.0)
        assert acct.get("force_compute") == 2.0
        assert acct.get("neighboring") == 0.5
        assert acct.get(RECOMPUTE) == 1.0
        assert acct.get(APP_COMPUTE) == 0.0
        assert acct.get(APP_MPI) == 0.0

    def test_recompute_restored_after_inner_exits(self):
        acct = TimeAccount()
        with acct.label(RECOMPUTE):
            with acct.label(CHECKPOINT_FUNCTION):
                acct.charge("compute", 1.0)
            assert acct.active_label == RECOMPUTE
            acct.charge("compute", 3.0)
        assert acct.active_label is None
        assert acct.get(RECOMPUTE) == 3.0
        assert acct.get(CHECKPOINT_FUNCTION) == 1.0

    def test_recompute_restored_after_inner_exception(self):
        acct = TimeAccount()
        with acct.label(RECOMPUTE):
            with pytest.raises(RuntimeError):
                with acct.label("force_compute"):
                    raise RuntimeError
            assert acct.active_label == RECOMPUTE
        assert acct.active_label is None

    def test_reentrant_recompute_label(self):
        acct = TimeAccount()
        with acct.label(RECOMPUTE):
            with acct.label(RECOMPUTE):
                acct.charge("compute", 1.0)
            acct.charge("compute", 1.0)
        assert acct.get(RECOMPUTE) == 2.0


class TestMergeIdempotence:
    def test_merge_max_idempotent(self):
        a, b = TimeAccount(), TimeAccount()
        a.charge("compute", 1.0)
        b.charge("compute", 3.0)
        b.charge("mpi", 1.0)
        a.merge_max(b)
        first = a.snapshot()
        a.merge_max(b)
        assert a.snapshot() == first

    def test_merge_max_with_self_is_identity(self):
        a = TimeAccount()
        a.charge("compute", 2.0)
        a.charge("mpi", 1.0)
        before = a.snapshot()
        a.merge_max(a)
        assert a.snapshot() == before

    def test_merge_sum_accumulates_not_idempotent(self):
        a, b = TimeAccount(), TimeAccount()
        a.charge("compute", 1.0)
        b.charge("compute", 2.0)
        a.merge_sum(b)
        a.merge_sum(b)
        assert a.get(APP_COMPUTE) == 5.0

    def test_merge_empty_is_noop(self):
        a = TimeAccount()
        a.charge("compute", 1.0)
        before = a.snapshot()
        a.merge_max(TimeAccount())
        a.merge_sum(TimeAccount())
        assert a.snapshot() == before
