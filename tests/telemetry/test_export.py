"""Exporter tests: Chrome trace-event JSON, validator, timeline text."""

import json

from repro.sim.trace import Trace
from repro.telemetry.collector import Telemetry
from repro.telemetry.export import (
    chrome_trace_events,
    diff_metrics,
    metrics_to_dict,
    to_chrome_trace,
    track_for_source,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.timeline import failure_timeline, render_timeline


class FakeClock:
    def __init__(self):
        self.now = 0.0


def make_telemetry():
    tel = Telemetry(enabled=True)
    clock = FakeClock()
    tel.bind(clock)
    with tel.span("rank0", "veloc.checkpoint", version=1):
        clock.now = 0.5
    tel.instant("rank1", "rank_killed")
    clock.now = 1.0
    with tel.span("rank1", "recompute", iteration=7):
        clock.now = 2.0
    return tel, clock


class TestTrackFolding:
    def test_rank_sources_fold(self):
        assert track_for_source("veloc.rank3") == "rank3"
        assert track_for_source("imr.rank12") == "rank12"
        assert track_for_source("kr.rank0") == "rank0"
        assert track_for_source("rank4") == "rank4"

    def test_non_rank_sources_untouched(self):
        assert track_for_source("fenix") == "fenix"
        assert track_for_source("veloc.server2") == "veloc.server2"
        assert track_for_source("engine") == "engine"


class TestChromeExport:
    def test_metadata_names_tracks(self):
        tel, _ = make_telemetry()
        events = chrome_trace_events(tel)
        names = [e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"]
        assert names == ["rank0", "rank1"]

    def test_span_becomes_complete_event(self):
        tel, _ = make_telemetry()
        events = chrome_trace_events(tel)
        xs = [e for e in events if e["ph"] == "X"]
        ckpt = next(e for e in xs if e["name"] == "veloc.checkpoint")
        assert ckpt["ts"] == 0.0
        assert ckpt["dur"] == 0.5e6  # seconds -> microseconds
        assert ckpt["args"]["version"] == 1

    def test_instant_event(self):
        tel, _ = make_telemetry()
        events = chrome_trace_events(tel)
        kill = next(e for e in events if e["name"] == "rank_killed")
        assert kill["ph"] == "i"
        assert kill["s"] == "t"

    def test_unterminated_span_extends_to_end(self):
        tel = Telemetry(enabled=True)
        clock = FakeClock()
        tel.bind(clock)
        tel.span("rank0", "hung").__enter__()  # never exited
        clock.now = 4.0
        tel.instant("rank0", "late")
        events = chrome_trace_events(tel)
        hung = next(e for e in events if e["name"] == "hung")
        assert hung["dur"] == 4.0e6
        assert hung["args"]["unterminated"] is True

    def test_legacy_trace_records_included(self):
        tel, _ = make_telemetry()
        trace = Trace()
        trace.emit(0.25, "veloc.rank0", "checkpoint", version=1)
        events = chrome_trace_events(tel, trace=trace)
        legacy = [e for e in events if e.get("cat") == "trace"]
        assert len(legacy) == 1
        # folded onto rank0's track
        rank0_tid = next(
            e["tid"] for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
            and e["args"]["name"] == "rank0"
        )
        assert legacy[0]["tid"] == rank0_tid

    def test_document_round_trips_and_validates(self, tmp_path):
        tel, _ = make_telemetry()
        path = str(tmp_path / "trace.json")
        write_chrome_trace(path, tel, run_info={"app": "test"})
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        assert validate_chrome_trace(doc) == []
        assert doc["otherData"]["app"] == "test"

    def test_non_serializable_fields_coerced(self, tmp_path):
        tel = Telemetry(enabled=True)
        tel.bind(FakeClock())
        tel.instant("rank0", "e", key=("veloc", 3), data={1: {2, 3}})
        doc = to_chrome_trace(tel)
        json.dumps(doc)  # must not raise


class TestValidator:
    def test_accepts_own_output(self):
        tel, _ = make_telemetry()
        assert validate_chrome_trace(to_chrome_trace(tel)) == []

    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2]) != []

    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({}) == ["missing or non-list 'traceEvents'"]

    def test_rejects_bad_phase(self):
        doc = {"traceEvents": [{"ph": "Z", "name": "x", "pid": 0, "tid": 0}]}
        assert any("bad phase" in e for e in validate_chrome_trace(doc))

    def test_rejects_complete_without_dur(self):
        doc = {"traceEvents": [
            {"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": 1.0}
        ]}
        assert any("dur" in e for e in validate_chrome_trace(doc))

    def test_rejects_instant_without_scope(self):
        doc = {"traceEvents": [
            {"ph": "i", "name": "x", "pid": 0, "tid": 0, "ts": 1.0}
        ]}
        assert any("scope" in e for e in validate_chrome_trace(doc))


class TestTimeline:
    def test_renders_rows_in_time_order(self):
        tel, _ = make_telemetry()
        text = render_timeline(tel)
        lines = text.splitlines()
        assert "event" in lines[0]
        body = lines[1:]
        times = [float(line.split()[0]) for line in body]
        assert times == sorted(times)
        assert any("+ veloc.checkpoint" in line for line in body)
        assert any("- recompute" in line for line in body)

    def test_failure_filter(self):
        tel, clock = make_telemetry()
        tel.instant("rank0", "unrelated_marker")
        text = failure_timeline(tel)
        assert "rank_killed" in text
        assert "unrelated_marker" not in text

    def test_sources_and_limit(self):
        tel, _ = make_telemetry()
        text = render_timeline(tel, sources=["rank1"], limit=1)
        body = text.splitlines()[1:]
        assert len(body) == 1
        assert "rank1" in body[0]

    def test_empty(self):
        tel = Telemetry(enabled=True)
        assert render_timeline(tel) == "(no events)"


class TestMetricsExport:
    def test_diff_detects_changes(self):
        a = Telemetry(enabled=True)
        b = Telemetry(enabled=True)
        a.inc("x", 1)
        b.inc("x", 2)
        b.set_gauge("g", 5)
        rows = diff_metrics(metrics_to_dict(a), metrics_to_dict(b))
        keys = [r[0] for r in rows]
        assert "counter:x" in keys
        assert "gauge:g.high" in keys
        absent = next(r for r in rows if r[0] == "gauge:g.high")
        assert absent[1] is None and absent[2] == 5.0

    def test_diff_identical_is_empty(self):
        a = Telemetry(enabled=True)
        a.inc("x", 1)
        doc = metrics_to_dict(a)
        assert diff_metrics(doc, doc) == []


class TestDroppedAnnotations:
    def make_dropped_trace(self):
        trace = Trace(max_records=2)
        for i in range(5):
            trace.emit(float(i), "world", "rank_killed", rank=i)
        return trace  # t=0,1,2 evicted; window (0.0, 2.0)

    def test_chrome_export_emits_trace_dropped_instant(self):
        tel, _ = make_telemetry()
        trace = self.make_dropped_trace()
        events = chrome_trace_events(tel, trace=trace)
        drops = [e for e in events if e.get("name") == "trace_dropped"]
        assert len(drops) == 1
        ev = drops[0]
        assert ev["ph"] == "i" and ev["s"] == "g"
        assert ev["args"]["dropped"] == 3
        assert ev["args"]["window"] == [0.0, 2.0]
        assert ev["ts"] == 2.0 * 1e6

    def test_chrome_export_validates_with_drop_marker(self):
        tel, _ = make_telemetry()
        doc = to_chrome_trace(tel, trace=self.make_dropped_trace())
        assert validate_chrome_trace(doc) == []

    def test_no_marker_without_drops(self):
        tel, _ = make_telemetry()
        trace = Trace()
        trace.emit(0.0, "world", "rank_killed", rank=0)
        events = chrome_trace_events(tel, trace=trace)
        assert not any(e.get("name") == "trace_dropped" for e in events)

    def test_timeline_annotation_row(self):
        tel, _ = make_telemetry()
        text = render_timeline(tel, trace=self.make_dropped_trace())
        assert "trace_dropped" in text
        assert "3 records evicted" in text

    def test_annotation_survives_failure_filter(self):
        tel, _ = make_telemetry()
        text = failure_timeline(tel, trace=self.make_dropped_trace())
        assert "trace_dropped" in text

    def test_annotation_survives_sources_filter(self):
        tel, _ = make_telemetry()
        text = render_timeline(tel, trace=self.make_dropped_trace(),
                               sources=["rank1"])
        assert "trace_dropped" in text
