"""End-to-end telemetry: a failure-injection run exports a valid Chrome
trace with the failure protocol in causal order on the right tracks."""

import pytest

from repro.apps.heatdis import HeatdisConfig
from repro.experiments.common import paper_env
from repro.harness.runner import run_heatdis_job
from repro.sim.failures import IterationFailure
from repro.telemetry import (
    Telemetry,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.telemetry.timeline import failure_timeline

RANKS = 4
INTERVAL = 10
KILL_RANK = 2


@pytest.fixture(scope="module")
def telemetered_run():
    """One Fenix+VeloC heatdis job with a single injected kill."""
    env = paper_env(RANKS + 1, n_spares=1, pfs_servers=2)
    cfg = HeatdisConfig(n_iters=30, modeled_bytes_per_rank=16e6)
    plan = IterationFailure.between_checkpoints(KILL_RANK, INTERVAL, 1)
    tel = Telemetry(enabled=True)
    report = run_heatdis_job(env, "fenix_veloc", RANKS, cfg, INTERVAL,
                             plan=plan, telemetry=tel)
    return tel, report


class TestAcceptanceTrace:
    def test_run_completed_with_one_failure(self, telemetered_run):
        tel, report = telemetered_run
        assert report.failures == 1
        assert report.attempts == 1  # Fenix repairs in place

    def test_export_validates(self, telemetered_run):
        tel, report = telemetered_run
        doc = to_chrome_trace(tel, trace=tel.trace)
        assert validate_chrome_trace(doc) == []
        assert len(doc["traceEvents"]) > 20

    def test_failure_protocol_causal_order(self, telemetered_run):
        """kill <= revoke <= shrink <= agree <= recover <= recompute."""
        tr = (telemetered_run[0]).tracer
        kill = tr.first("rank_killed", source=f"rank{KILL_RANK}")
        revoke = tr.first("revoke", source="mpi")
        shrink = tr.first("fenix.shrink", source="fenix")
        agree = tr.first("fenix.agree", source="fenix")
        recover = tr.first("veloc.recover")
        recompute = tr.first("recompute")
        for rec in (kill, revoke, shrink, agree, recover, recompute):
            assert rec is not None
        assert kill.start <= revoke.start <= shrink.start <= agree.start
        assert agree.start <= recover.start
        assert recover.start <= recompute.start

    def test_recovery_spans_on_rank_tracks(self, telemetered_run):
        tr = (telemetered_run[0]).tracer
        # every active rank recovers data, then recomputes on its own track
        recover_ranks = {
            r.source for r in tr.find(name="veloc.recover")
        }
        assert f"veloc.rank{KILL_RANK}" in recover_ranks
        recompute_ranks = {r.source for r in tr.find(name="recompute")}
        # the dead process never recomputes; its replacement (the spare,
        # world rank RANKS) does, on its own physical track
        assert f"rank{KILL_RANK}" not in recompute_ranks
        assert f"rank{RANKS}" in recompute_ranks
        # the replacement pulled from the PFS; survivors from scratch
        replacement = [
            r for r in tr.find(name="veloc.recover",
                               source=f"veloc.rank{KILL_RANK}")
        ]
        assert replacement[0].fields["tier"] == "pfs"

    def test_repair_span_closed_with_role(self, telemetered_run):
        tr = (telemetered_run[0]).tracer
        repairs = tr.find(name="fenix.repair")
        assert repairs and all(not r.open for r in repairs)
        roles = tr.find(name="fenix.role")
        assert any(r.fields["role"] == "RECOVERED" for r in roles)
        assert any(r.fields["role"] == "SURVIVOR" for r in roles)

    def test_spare_activation_recorded(self, telemetered_run):
        tel, _ = telemetered_run
        acts = tel.tracer.find(name="fenix.spare_activated")
        assert len(acts) == 1
        assert acts[0].fields["replaces"] == KILL_RANK
        # satellite: legacy trace event too
        assert tel.trace.count("spare_activated") == 1

    def test_kr_trace_events_absent_for_manual_strategy(self, telemetered_run):
        """fenix_veloc is the manual integration -- no KR regions."""
        tel, _ = telemetered_run
        assert tel.trace.count("kr_region_begin") == 0

    def test_metrics_in_report(self, telemetered_run):
        tel, report = telemetered_run
        assert report.telemetry is not None
        merged = report.telemetry["merged"]
        assert merged["counters"]["mpi.ranks_died"] == 1
        assert merged["counters"]["mpi.revokes"] >= 1
        assert merged["counters"]["fenix.repairs"] == 1
        assert merged["counters"]["recompute.iterations"] > 0
        assert merged["counters"]["veloc.checkpoint.bytes"] > 0
        hist = merged["histograms"]["veloc.checkpoint.latency"]
        assert hist["count"] >= RANKS
        assert "fenix.spare_pool_depth" in merged["gauges"]

    def test_failure_timeline_renders(self, telemetered_run):
        tel, _ = telemetered_run
        text = failure_timeline(tel, trace=tel.trace)
        assert "rank_killed" in text
        assert "revoke" in text
        assert "recompute" in text


class TestKRStrategyTrace:
    def test_kr_region_events_and_spans(self):
        env = paper_env(RANKS + 1, n_spares=1, pfs_servers=2)
        cfg = HeatdisConfig(n_iters=30, modeled_bytes_per_rank=8e6)
        # die after checkpoint 1 so a restorable version exists
        plan = IterationFailure.between_checkpoints(1, INTERVAL, 1)
        tel = Telemetry(enabled=True)
        report = run_heatdis_job(env, "fenix_kr_veloc", RANKS, cfg, INTERVAL,
                                 plan=plan, telemetry=tel)
        assert report.failures == 1
        # satellite: KR checkpoint-region begin/commit trace events
        begins = tel.trace.count("kr_region_begin")
        commits = tel.trace.count("kr_region_commit")
        assert begins > 0
        assert 0 < commits < begins
        spans = tel.tracer.find(name="kr.region")
        assert spans
        commits_spans = tel.tracer.find(name="kr.commit")
        assert commits_spans
        # commits nest inside their region span
        region_ids = {s.sid for s in spans}
        assert all(c.parent in region_ids for c in commits_spans)
        restores = tel.tracer.find(name="kr.restore")
        assert restores
        doc = to_chrome_trace(tel, trace=tel.trace)
        assert validate_chrome_trace(doc) == []


class TestIMRStrategyTrace:
    def test_imr_buddy_events(self):
        env = paper_env(RANKS + 1, n_spares=1, pfs_servers=2)
        cfg = HeatdisConfig(n_iters=30, modeled_bytes_per_rank=8e6)
        # die after checkpoint 1 so the replacement restores from its buddy
        plan = IterationFailure.between_checkpoints(1, INTERVAL, 1)
        tel = Telemetry(enabled=True)
        run_heatdis_job(env, "fenix_kr_imr", RANKS, cfg, INTERVAL,
                        plan=plan, telemetry=tel)
        # satellite: buddy send on store, buddy recv on the replacement's
        # restore path
        assert tel.trace.count("imr_buddy_send") > 0
        assert tel.trace.count("imr_buddy_recv") > 0
        stores = tel.tracer.find(name="imr.store")
        restores = tel.tracer.find(name="imr.restore")
        assert stores and restores
        merged = tel.merged_metrics()
        assert merged.counter("imr.store.bytes").value > 0
        assert merged.counter("imr.restore.buddy").value >= 1


class TestDisabledTelemetry:
    def test_run_without_telemetry_records_nothing(self):
        from repro.telemetry.collector import NULL_TELEMETRY

        env = paper_env(RANKS + 1, n_spares=1, pfs_servers=2)
        cfg = HeatdisConfig(n_iters=10, modeled_bytes_per_rank=4e6)
        before = len(NULL_TELEMETRY.tracer)
        report = run_heatdis_job(env, "fenix_veloc", RANKS, cfg, INTERVAL)
        assert report.telemetry is None
        assert len(NULL_TELEMETRY.tracer) == before
        assert len(NULL_TELEMETRY.metrics) == 0
