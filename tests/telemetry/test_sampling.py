"""Overhead-bounded sampling: decisions, exemptions, exact accounting."""

import pytest

from repro.sim.trace import Trace
from repro.telemetry import SamplingPolicy, SpanSampler, Telemetry
from repro.telemetry.sampling import (
    SAMPLEABLE_SPANS,
    SAMPLEABLE_TRACE_KINDS,
    record_sampleable,
    span_sampleable,
)
from repro.util.errors import ConfigError

#: kinds the monitor state machines consume -- none may ever be sampled
PROTECTED_KINDS = (
    "rank_killed", "rank_dead", "revoke", "detect", "gate_arrive",
    "shrink", "repair", "agree", "role", "spare_activated", "abort",
    "comm_create", "checkpoint", "recover", "flush_submit", "flush_done",
    "imr_store", "imr_restore", "kr_region_commit",
)

#: span names the profile layer's recovery walk depends on
PROTECTED_SPANS = (
    "fenix.repair", "fenix.init", "veloc.checkpoint", "veloc.recover",
    "imr.store", "imr.restore", "kr.restore", "kr.commit", "recompute",
    "job.launch", "job.relaunch",
)


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            SamplingPolicy(head=-1)
        with pytest.raises(ConfigError):
            SamplingPolicy(stride=0)
        with pytest.raises(ConfigError):
            SamplingPolicy(budget_per_kind=0)
        with pytest.raises(ConfigError):
            SamplingPolicy(stride=8, max_stride=4)

    def test_frozen_and_hashable(self):
        assert hash(SamplingPolicy()) == hash(SamplingPolicy())
        assert SamplingPolicy.tightest() != SamplingPolicy()


class TestExemptions:
    def test_protected_kinds_and_spans_are_never_sampleable(self):
        for kind in PROTECTED_KINDS:
            assert not record_sampleable(kind), kind
        for name in PROTECTED_SPANS:
            assert not span_sampleable(name), name

    def test_default_deny(self):
        # a name invented tomorrow is protected until proven safe
        assert not span_sampleable("some.new.span")
        assert not record_sampleable("some_new_kind")
        assert span_sampleable("compute")
        assert span_sampleable("mpi.allreduce")
        assert record_sampleable("kr_region_begin")

    def test_sampler_never_drops_protected_names(self):
        sampler = SpanSampler(SamplingPolicy(head=0, stride=1000))
        for _ in range(5000):
            assert sampler.keep_span("fenix.repair")
            assert sampler.keep_record("rank_killed")
        assert sampler.dropped_total == 0


class TestDecisions:
    def test_head_then_stride(self):
        sampler = SpanSampler(SamplingPolicy(head=2, stride=3,
                                             budget_per_kind=1000))
        kept = [i for i in range(14) if sampler.keep_span("compute")]
        # first 2 always; then every 3rd occurrence past the head
        assert kept == [0, 1, 2, 5, 8, 11]

    def test_stride_doubles_per_budget(self):
        sampler = SpanSampler(SamplingPolicy(head=0, stride=2,
                                             budget_per_kind=2,
                                             max_stride=8))
        kept = [i for i in range(40) if sampler.keep_span("compute")]
        # stride 2 for 2 keeps, then 4 for 2 keeps, then pinned at 8
        assert kept[:4] == [0, 2, 4, 8]
        gaps = {b - a for a, b in zip(kept[4:], kept[5:])}
        assert gaps == {8}

    def test_determinism(self):
        names = (["compute"] * 50 + ["mpi.send", "kr.region"] * 30) * 3
        a, b = (SpanSampler(SamplingPolicy.tightest()) for _ in range(2))
        assert [a.keep_span(n) for n in names] == \
            [b.keep_span(n) for n in names]

    def test_per_kind_counters_are_exact(self):
        sampler = SpanSampler(SamplingPolicy(head=1, stride=4))
        total = 100
        kept = sum(1 for _ in range(total) if sampler.keep_span("compute"))
        assert kept + sampler.dropped_spans["compute"] == total
        assert sampler.summary()["dropped_span_total"] == \
            sampler.dropped_span_total
        assert sampler.summary()["policy"] == sampler.policy.to_dict()


class TestTelemetryIntegration:
    def test_sampled_spans_take_the_null_path(self):
        tel = Telemetry(sampler=SpanSampler(SamplingPolicy(head=1,
                                                           stride=1000)))
        tel.tracer.bind(type("C", (), {"now": 0.0})())
        with tel.span("rank0", "compute") as sp:
            assert sp is not None
        with tel.span("rank0", "compute"):
            pass  # head=1 keeps one more: the first post-head occurrence
        with tel.span("rank0", "compute"):
            pass  # third occurrence is sampled out: the no-op span
        assert len(tel.tracer.spans) == 2
        assert tel.sampler.dropped_spans["compute"] == 1
        # protected instants always record
        for _ in range(10):
            assert tel.instant("fenix", "fenix.detect") is not None

    def test_trace_counts_sampled_records_separately(self):
        sampler = SpanSampler(SamplingPolicy(head=2, stride=10))
        tr = Trace(enabled=True, sampler=sampler)
        for i in range(30):
            tr.emit(float(i), "kr.rank0", "kr_region_begin", iteration=i)
            tr.emit(float(i), "app", "rank_killed", rank=0)
        assert tr.count("rank_killed") == 30   # protected: complete
        kept = tr.count("kr_region_begin")
        assert kept + tr.sampled_out == 30
        assert tr.sampled_out > 0
        assert tr.dropped == 0                 # sampling is not eviction
        assert tr.sampled_window is not None
        lo, hi = tr.sampled_window
        assert 0.0 <= lo <= hi <= 29.0
        tr.clear()
        assert tr.sampled_out == 0 and tr.sampled_window is None

    def test_sampleable_sets_stay_disjoint_from_monitor_needs(self):
        assert not (set(PROTECTED_KINDS) & SAMPLEABLE_TRACE_KINDS)
        assert not (set(PROTECTED_SPANS) & SAMPLEABLE_SPANS)
