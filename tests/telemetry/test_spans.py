"""Tracer/span tests: nesting, error capture, the disabled fast path."""

from repro.telemetry.collector import NULL_TELEMETRY, Telemetry
from repro.telemetry.spans import NULL_SPAN, Tracer


class FakeClock:
    def __init__(self):
        self.now = 0.0


class TestSpans:
    def test_span_records_times(self):
        clock = FakeClock()
        tr = Tracer(clock)
        with tr.span("rank0", "work"):
            clock.now = 2.5
        rec = tr.first("work")
        assert rec.start == 0.0
        assert rec.end == 2.5
        assert rec.duration == 2.5
        assert not rec.open

    def test_nesting_sets_parent(self):
        clock = FakeClock()
        tr = Tracer(clock)
        with tr.span("rank0", "outer"):
            with tr.span("rank0", "inner"):
                pass
        outer = tr.first("outer")
        inner = tr.first("inner")
        assert inner.parent == outer.sid
        assert outer.parent is None

    def test_sibling_sources_do_not_nest(self):
        tr = Tracer(FakeClock())
        with tr.span("rank0", "a"):
            with tr.span("rank1", "b"):
                pass
        assert tr.first("b").parent is None

    def test_instant_parents_to_open_span(self):
        tr = Tracer(FakeClock())
        with tr.span("rank0", "outer"):
            inst = tr.instant("rank0", "marker", key=1)
        assert inst.parent == tr.first("outer").sid
        assert inst.start == inst.end

    def test_error_capture(self):
        clock = FakeClock()
        tr = Tracer(clock)
        try:
            with tr.span("rank0", "doomed"):
                clock.now = 1.0
                raise ValueError("boom")
        except ValueError:
            pass
        rec = tr.first("doomed")
        assert rec.error == "ValueError"
        assert rec.end == 1.0

    def test_kill_closes_orphaned_children(self):
        """Closing an outer span force-closes descendants a killed
        process never unwound."""
        clock = FakeClock()
        tr = Tracer(clock)
        outer = tr.span("rank0", "outer")
        inner = tr.span("rank0", "inner")
        outer.__enter__()
        inner.__enter__()
        clock.now = 3.0
        # simulate the unwind skipping inner's __exit__
        outer.__exit__(RuntimeError, RuntimeError("killed"), None)
        assert tr.first("inner").end == 3.0
        assert tr.first("inner").error == "RuntimeError"
        assert tr.open_spans("rank0") == []

    def test_find_and_sources(self):
        tr = Tracer(FakeClock())
        with tr.span("rank0", "x", version=1):
            pass
        tr.instant("mpi", "revoke")
        assert len(tr.find(name="x")) == 1
        assert tr.find(source="mpi")[0].name == "revoke"
        assert tr.sources() == ["mpi", "rank0"]
        assert len(tr) == 2

    def test_unbound_clock_reads_zero(self):
        tr = Tracer()
        assert tr.now == 0.0


class TestTelemetryFacade:
    def test_disabled_span_is_shared_null(self):
        tel = Telemetry(enabled=False)
        assert tel.span("rank0", "x") is NULL_SPAN
        assert tel.span("rank1", "y") is NULL_SPAN
        with tel.span("rank0", "x"):
            pass
        assert len(tel.tracer) == 0

    def test_disabled_metrics_record_nothing(self):
        tel = Telemetry(enabled=False)
        tel.inc("a")
        tel.set_gauge("b", 1)
        tel.observe("c", 1.0)
        tel.instant("rank0", "e")
        assert len(tel.metrics) == 0
        assert len(tel.tracer) == 0

    def test_null_telemetry_is_disabled(self):
        assert NULL_TELEMETRY.enabled is False

    def test_enabled_records(self):
        tel = Telemetry(enabled=True)
        clock = FakeClock()
        tel.bind(clock)
        with tel.span("rank0", "work", version=3):
            clock.now = 1.0
        tel.inc("events")
        assert tel.tracer.first("work")["version"] == 3
        assert tel.metrics.counter("events").value == 1

    def test_rank_metrics_merge(self):
        tel = Telemetry(enabled=True)
        tel.rank_metrics(0).inc("bytes", 10)
        tel.rank_metrics(1).inc("bytes", 20)
        tel.inc("revokes", 1)
        merged = tel.merged_metrics()
        assert merged.counter("bytes").value == 30
        assert merged.counter("revokes").value == 1

    def test_reset_rank(self):
        tel = Telemetry(enabled=True)
        tel.rank_metrics(0).inc("bytes", 10)
        tel.reset_rank(0)
        assert tel.rank_metrics(0).counter("bytes").value == 0.0

    def test_metrics_summary_shape(self):
        tel = Telemetry(enabled=True)
        tel.rank_metrics(2).inc("x")
        summary = tel.metrics_summary()
        assert set(summary) == {"merged", "job", "ranks"}
        assert "2" in summary["ranks"]

    def test_clear(self):
        tel = Telemetry(enabled=True)
        tel.bind(FakeClock())
        tel.instant("rank0", "e")
        tel.inc("c")
        tel.rank_metrics(0).inc("d")
        tel.clear()
        assert len(tel.tracer) == 0
        assert tel.metrics.counter("c").value == 0.0
        assert tel.ranks == {}
