"""CLI tests: run/validate/diff subcommands exercised in-process."""

import json

import pytest

from repro.telemetry.__main__ import main


class TestRunCommand:
    def test_run_exports_valid_artifacts(self, tmp_path, capsys):
        out = tmp_path / "run1"
        rc = main([
            "run", "--app", "heatdis", "--strategy", "fenix_veloc",
            "--ranks", "4", "--iters", "20", "--interval", "10",
            "--bytes", "4e6", "--kill-rank", "2",
            "--out", str(out), "--timeline",
        ])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "wall=" in captured
        assert "rank_killed" in captured  # timeline printed
        trace = json.loads((out / "trace.json").read_text())
        assert trace["traceEvents"]
        metrics = json.loads((out / "metrics.json").read_text())
        assert metrics["merged"]["counters"]["mpi.ranks_died"] == 1
        assert metrics["run"]["strategy"] == "fenix_veloc"

    def test_unknown_strategy_rejected(self, tmp_path, capsys):
        rc = main(["run", "--strategy", "nope", "--out", str(tmp_path)])
        assert rc == 2
        assert "unknown strategy" in capsys.readouterr().err


class TestValidateCommand:
    def test_valid_file(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        path.write_text(json.dumps({"traceEvents": []}))
        assert main(["validate", str(path)]) == 0
        assert "valid" in capsys.readouterr().out

    def test_invalid_file(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        path.write_text(json.dumps({"traceEvents": [{"ph": "Q"}]}))
        assert main(["validate", str(path)]) == 1
        assert "INVALID" in capsys.readouterr().err


class TestDiffCommand:
    def _write(self, path, counters):
        doc = {"merged": {"counters": counters, "gauges": {},
                          "histograms": {}}}
        path.write_text(json.dumps(doc))

    def test_identical(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        self._write(a, {"x": 1.0})
        assert main(["diff", str(a), str(a)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_differing_fails_at_default_tolerance(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write(a, {"x": 1.0})
        self._write(b, {"x": 2.0, "y": 5.0})
        assert main(["diff", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "counter:x" in out
        assert "absent -> 5" in out
        assert "OVER-BUDGET" in out

    def test_within_tolerance_passes(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write(a, {"x": 100.0})
        self._write(b, {"x": 104.0})  # 3.8% relative to max(|a|,|b|)
        assert main(["diff", str(a), str(b), "--tolerance", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "OVER-BUDGET" not in out
        assert "all metrics within the 0.05 budget" in out

    def test_beyond_tolerance_fails(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write(a, {"x": 100.0})
        self._write(b, {"x": 120.0})
        assert main(["diff", str(a), str(b), "--tolerance", "0.05"]) == 1
        assert "OVER-BUDGET" in capsys.readouterr().out

    def test_absent_metric_always_out_of_tolerance(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write(a, {"x": 1.0, "gone": 3.0})
        self._write(b, {"x": 1.0})
        assert main(["diff", str(a), str(b), "--tolerance", "0.5"]) == 1
        assert "3 -> absent" in capsys.readouterr().out
