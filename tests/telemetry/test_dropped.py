"""Ring-buffer-dropped traces, end to end.

``tests/telemetry/test_export.py`` covers drop annotations on synthetic
traces; these tests run a *real* failing job with a tiny
``trace_max_records`` and assert the whole observability path -- Chrome
export, text timelines, the profile flame stacks -- stays valid and
says so, instead of silently presenting a truncated story.
"""

import pytest

from repro.apps.heatdis import HeatdisConfig
from repro.experiments.common import paper_env
from repro.harness.runner import run_heatdis_job
from repro.sim.failures import IterationFailure
from repro.telemetry import Telemetry
from repro.telemetry.export import (
    chrome_trace_events,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.telemetry.timeline import failure_timeline

#: small enough that a 4-rank failing run must evict records
TINY_BUFFER = 8


def run_failing_job(max_records=TINY_BUFFER):
    tel = Telemetry(enabled=True)
    env = paper_env(5, n_spares=1, pfs_servers=2)
    cfg = HeatdisConfig(n_iters=20, modeled_bytes_per_rank=4e6)
    plan = IterationFailure.between_checkpoints(2, 5, 1)
    report = run_heatdis_job(env, "fenix_kr_veloc", 4, cfg, 5, plan=plan,
                             telemetry=tel, trace_max_records=max_records)
    return tel, report


@pytest.fixture(scope="module")
def dropped_run():
    tel, report = run_failing_job()
    assert tel.trace is not None
    assert tel.trace.dropped > 0, "job too small to overflow the buffer"
    return tel, report


class TestEndToEndDrops:
    def test_job_survives_ring_buffer_mode(self, dropped_run):
        _tel, report = dropped_run
        assert report.failures >= 1
        assert report.wall_time > 0

    def test_chrome_export_carries_drop_marker_and_validates(
            self, dropped_run):
        tel, _ = dropped_run
        doc = to_chrome_trace(tel, trace=tel.trace)
        assert validate_chrome_trace(doc) == []
        drops = [e for e in doc["traceEvents"]
                 if e.get("name") == "trace_dropped"]
        assert len(drops) == 1
        assert drops[0]["args"]["dropped"] == tel.trace.dropped

    def test_drop_window_matches_trace(self, dropped_run):
        tel, _ = dropped_run
        (ev,) = [e for e in chrome_trace_events(tel, trace=tel.trace)
                 if e.get("name") == "trace_dropped"]
        assert ev["args"]["window"] == list(tel.trace.dropped_window)

    def test_failure_timeline_discloses_eviction(self, dropped_run):
        tel, _ = dropped_run
        text = failure_timeline(tel, trace=tel.trace)
        assert "trace_dropped" in text
        assert f"{tel.trace.dropped} records evicted" in text

    def test_timeline_limit_does_not_hide_annotation(self, dropped_run):
        tel, _ = dropped_run
        text = failure_timeline(tel, trace=tel.trace, limit=5)
        assert "trace_dropped" in text

    def test_unbounded_trace_same_job_has_no_drops(self):
        tel, _ = run_failing_job(max_records=None)
        assert tel.trace.dropped == 0
        assert "trace_dropped" not in failure_timeline(tel,
                                                       trace=tel.trace)


class TestDropsInDownstreamLayers:
    def test_flame_stacks_unaffected_by_legacy_trace_drops(
            self, dropped_run):
        # folded stacks come from the span stream, not the legacy ring
        # buffer; drops there must not corrupt the flame graph
        from repro.profile.flamegraph import folded_stacks

        tel, _ = dropped_run
        stacks = folded_stacks(tel)
        assert stacks
        assert all(weight >= 0 for weight in stacks.values())

    def test_exemplar_artifacts_render_on_dropped_trace(self,
                                                        dropped_run):
        # the campaign report embeds exactly these two artifacts; both
        # must render (with the disclosure) even on an evicting buffer
        from repro.profile.flamegraph import folded_stacks, format_folded

        tel, _ = dropped_run
        timeline = failure_timeline(tel, trace=tel.trace, limit=40)
        folded = format_folded(folded_stacks(tel))
        assert "trace_dropped" in timeline
        assert folded.strip()
