"""Sampling end-to-end: observability shrinks, conclusions do not.

Two acceptance properties for overhead-bounded sampling:

* a PROTOCOLS.md §4 shrink campaign under the *tightest* policy still
  passes every monitor invariant, and the profile layer's recovery
  critical path is byte-identical to the sampling-off run; and
* on a fig5-shaped job the tightest policy cuts telemetry volume by at
  least half, with every suppressed span and record accounted for.
"""

import json

from repro.apps.heatdis import HeatdisConfig
from repro.apps.heatdis_elastic import make_elastic_heatdis_main
from repro.experiments.common import paper_env
from repro.fenix import FenixSystem
from repro.harness.runner import run_heatdis_job
from repro.monitor import MonitorSuite
from repro.mpi import World
from repro.profile import extract_critical_path
from repro.sim import Cluster, ClusterSpec, NetworkSpec, NodeSpec, PFSSpec
from repro.sim.failures import IterationFailure
from repro.telemetry import SamplingPolicy, SpanSampler, Telemetry


def run_shrink(sampler=None):
    """§4 spare-exhaustion: 3 ranks, zero spares, rank 1 killed at it 17."""
    tel = Telemetry(sampler=sampler)
    cluster = Cluster(
        ClusterSpec(
            n_nodes=3,
            node=NodeSpec(nic_bandwidth=1e9, nic_latency=1e-6,
                          memory_bandwidth=1e10),
            network=NetworkSpec(fabric_latency=0.0),
            pfs=PFSSpec(n_servers=2, server_bandwidth=5e8,
                        server_latency=1e-5),
        ),
        telemetry=tel,
    )
    cluster.trace.enabled = True
    cluster.trace.sampler = sampler
    plan = IterationFailure([(1, 17)])
    suite = MonitorSuite()
    suite.attach(cluster.trace)
    world = World(cluster, 3)
    system = FenixSystem(world, n_spares=0, spare_policy="shrink")
    cfg = HeatdisConfig(local_rows=4, cols=16, modeled_bytes_per_rank=16e6,
                        n_iters=30)
    main = make_elastic_heatdis_main(cfg, cluster, 12, 3, 6,
                                     failure_plan=plan, results={})

    def wrapped(rank):
        yield from system.run(world.context(rank), main)

    for r in range(3):
        world.spawn(r, wrapped(r), failure_plan=plan)
    cluster.engine.run()
    world.raise_job_errors()
    suite.finish()
    return tel, cluster.trace, suite


class TestShrinkUnderTightestSampling:
    def test_monitors_and_critical_path_survive_tightest_policy(self):
        base_tel, base_trace, base_suite = run_shrink(sampler=None)
        sampler = SpanSampler(SamplingPolicy.tightest())
        tight_tel, tight_trace, tight_suite = run_shrink(sampler=sampler)

        # zero monitor false-positives: the protocol story is intact
        assert base_suite.violations == []
        assert tight_suite.violations == []

        # no protocol trace record was suppressed in this campaign: every
        # kind the §4 monitors consume is exempt by construction
        assert tight_trace.sampled_out == 0
        assert len(list(tight_trace)) == len(list(base_trace))

        # the recovery critical path is byte-identical either way
        base_cp = json.dumps(extract_critical_path(base_tel).to_dict(),
                             sort_keys=True)
        tight_cp = json.dumps(extract_critical_path(tight_tel).to_dict(),
                              sort_keys=True)
        assert base_cp == tight_cp

        # ... while the span firehose genuinely shrank
        base_n = len(base_tel.tracer.spans)
        tight_n = len(tight_tel.tracer.spans)
        assert tight_n < base_n
        assert tight_n + sampler.dropped_span_total == base_n


class TestFig5VolumeReduction:
    def run_fig5(self, sampler=None):
        """Fig-5 shape: 8-rank heatdis, fenix_kr_veloc, one mid-run kill."""
        tel = Telemetry(sampler=sampler)
        suite = MonitorSuite()
        env = paper_env(9, n_spares=1, pfs_servers=2)
        plan = IterationFailure.between_checkpoints(2, 10, 1)
        report = run_heatdis_job(
            env, "fenix_kr_veloc", 8,
            HeatdisConfig(n_iters=40, modeled_bytes_per_rank=16e6), 10,
            plan=plan, telemetry=tel, monitor=suite, strict_monitor=True,
        )
        return report, tel, suite._trace

    def test_tightest_policy_halves_volume_with_exact_accounting(self):
        base_report, base_tel, base_trace = self.run_fig5(sampler=None)
        sampler = SpanSampler(SamplingPolicy.tightest())
        report, tel, trace = self.run_fig5(sampler=sampler)

        # physics unchanged: sampling is a pure observer knob
        assert report.wall_time == base_report.wall_time

        baseline = len(base_tel.tracer)
        kept = len(tel.tracer)
        assert kept <= baseline / 2, (kept, baseline)
        # conservation: every span/instant is either kept or counted
        assert kept + sampler.dropped_span_total == baseline

        # the flight recorder shares the sampler and the same invariant
        assert trace.sampled_out > 0
        assert len(list(trace)) + trace.sampled_out == len(list(base_trace))

        summary = sampler.summary()
        assert summary["dropped_span_total"] == sampler.dropped_span_total
        assert summary["dropped_spans"]  # per-name attribution present
