"""Metrics registry unit tests: bucketing, merge, reset semantics."""

import math

import pytest

from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.util.errors import ConfigError


class TestCounter:
    def test_inc(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1.0)

    def test_reset(self):
        c = Counter("x")
        c.inc(7)
        c.reset()
        assert c.value == 0.0


class TestGauge:
    def test_set_tracks_high_water(self):
        g = Gauge("backlog")
        g.set(3)
        g.set(1)
        assert g.value == 1.0
        assert g.high == 3.0

    def test_inc_dec(self):
        g = Gauge("depth")
        g.inc(2)
        g.dec()
        assert g.value == 1.0
        assert g.high == 2.0

    def test_reset(self):
        g = Gauge("x")
        g.set(5)
        g.reset()
        assert g.value == 0.0 and g.high == 0.0


class TestHistogramBucketing:
    def test_powers_land_in_own_bucket(self):
        h = Histogram("lat", base=2.0)
        # (2^(i-1), 2^i]: 1 -> bucket 0, 2 -> bucket 1, 4 -> bucket 2
        assert h.bucket_index(1.0) == 0
        assert h.bucket_index(2.0) == 1
        assert h.bucket_index(4.0) == 2
        assert h.bucket_index(3.0) == 2  # (2, 4]

    def test_fractional_values(self):
        h = Histogram("lat", base=2.0)
        assert h.bucket_index(0.5) == -1
        assert h.bucket_index(0.3) == -1  # (0.25, 0.5]
        assert h.bucket_index(0.25) == -2

    def test_underflow_bucket(self):
        h = Histogram("lat")
        assert h.bucket_index(0.0) is None
        assert h.bucket_index(-3.0) is None
        h.observe(0.0)
        assert h.buckets[None] == 1

    def test_bounds_contain_values(self):
        h = Histogram("lat", base=10.0)
        for v in (1e-6, 0.004, 1.0, 9.99, 10.0, 123.0):
            idx = h.bucket_index(v)
            lo, hi = h.bucket_bounds(idx)
            assert lo < v <= hi

    def test_stats(self):
        h = Histogram("sz")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.mean == 2.0
        assert h.min == 1.0 and h.max == 3.0

    def test_bad_base(self):
        with pytest.raises(ConfigError):
            Histogram("x", base=1.0)

    def test_to_dict_serializable_keys(self):
        h = Histogram("sz")
        h.observe(0.0)
        h.observe(4.0)
        d = h.to_dict()
        assert "underflow" in d["buckets"]
        assert d["buckets"]["2"] == 1
        assert d["min"] == 0.0 and d["max"] == 4.0

    def test_empty_to_dict(self):
        d = Histogram("sz").to_dict()
        assert d["count"] == 0
        assert d["min"] is None and d["max"] is None


class TestHistogramMerge:
    def test_merge_adds_buckets(self):
        a, b = Histogram("x"), Histogram("x")
        a.observe(1.0)
        b.observe(1.0)
        b.observe(100.0)
        a.merge(b)
        assert a.count == 3
        assert a.buckets[0] == 2
        assert a.max == 100.0

    def test_base_mismatch_rejected(self):
        a, b = Histogram("x", base=2.0), Histogram("x", base=10.0)
        with pytest.raises(ConfigError):
            a.merge(b)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_type_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigError):
            reg.gauge("x")
        with pytest.raises(ConfigError):
            reg.histogram("x")

    def test_convenience_helpers(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.set_gauge("g", 5)
        reg.observe("h", 1.5)
        assert reg.counter("c").value == 2
        assert reg.gauge("g").high == 5
        assert reg.histogram("h").count == 1

    def test_len_and_names(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.set_gauge("b", 1)
        reg.observe("c", 1)
        assert len(reg) == 3
        assert set(reg.names()) == {"a", "b", "c"}


class TestCrossRankMerge:
    def make_rank(self, rank):
        reg = MetricsRegistry()
        reg.inc("ckpt.bytes", 100 * (rank + 1))
        reg.set_gauge("backlog", rank)
        reg.observe("latency", 0.1 * (rank + 1))
        return reg

    def test_counters_sum(self):
        merged = MetricsRegistry()
        for r in range(4):
            merged.merge(self.make_rank(r))
        assert merged.counter("ckpt.bytes").value == 100 + 200 + 300 + 400

    def test_gauges_take_max(self):
        merged = MetricsRegistry()
        for r in range(4):
            merged.merge(self.make_rank(r))
        assert merged.gauge("backlog").value == 3
        assert merged.gauge("backlog").high == 3

    def test_histograms_merge_bucketwise(self):
        merged = MetricsRegistry()
        for r in range(4):
            merged.merge(self.make_rank(r))
        h = merged.histogram("latency")
        assert h.count == 4
        assert math.isclose(h.total, 0.1 + 0.2 + 0.3 + 0.4)

    def test_merge_into_empty_equals_snapshot(self):
        src = self.make_rank(2)
        merged = MetricsRegistry()
        merged.merge(src)
        assert merged.snapshot() == src.snapshot()


class TestResetOnRestart:
    def test_reset_zeroes_but_keeps_handles(self):
        reg = MetricsRegistry()
        c = reg.counter("ckpt")
        g = reg.gauge("backlog")
        h = reg.histogram("lat")
        c.inc(10)
        g.set(5)
        h.observe(1.0)
        reg.reset()
        assert c.value == 0.0
        assert g.value == 0.0 and g.high == 0.0
        assert h.count == 0 and h.buckets == {}
        # cached handles keep working and land in the same registry
        c.inc(1)
        assert reg.counter("ckpt").value == 1.0
        assert reg.counter("ckpt") is c

    def test_snapshot_after_reset_is_clean(self):
        reg = MetricsRegistry()
        reg.inc("a", 3)
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 0.0}
