"""Shared monitored failure-injection runs (one per strategy family).

Module-scoped: the corruption, explain, and CLI tests all replay the same
recorded streams, so each job runs once per session.
"""

import pytest

from repro.apps.heatdis import HeatdisConfig
from repro.apps.minimd import MiniMDConfig
from repro.experiments.common import paper_env
from repro.harness.runner import run_heatdis_job, run_minimd_job
from repro.monitor import MonitorSuite
from repro.sim.failures import IterationFailure

RANKS = 4
INTERVAL = 10
N_ITERS = 30


def run_monitored(strategy, kill_rank=2, app="heatdis"):
    """One strictly monitored job; returns (report, suite, records)."""
    env = paper_env(RANKS + 1, n_spares=1, pfs_servers=2)
    plan = IterationFailure.between_checkpoints(kill_rank, INTERVAL, 1)
    suite = MonitorSuite()
    if app == "minimd":
        report = run_minimd_job(
            env, strategy, RANKS, MiniMDConfig(n_steps=N_ITERS), INTERVAL,
            plan=plan, strict_monitor=True, monitor=suite,
        )
    else:
        report = run_heatdis_job(
            env, strategy, RANKS,
            HeatdisConfig(n_iters=N_ITERS, modeled_bytes_per_rank=16e6),
            INTERVAL, plan=plan, strict_monitor=True, monitor=suite,
        )
    return report, suite, list(suite._trace)


def run_elastic_monitored(n_ranks, plan):
    """PROTOCOLS.md §4 spare-exhaustion path: zero spares, shrink policy."""
    from repro.apps import HeatdisConfig
    from repro.apps.heatdis_elastic import make_elastic_heatdis_main
    from repro.fenix import FenixSystem
    from repro.mpi import World
    from tests.apps.conftest import app_cluster

    cluster = app_cluster(n_ranks)
    cluster.trace.enabled = True
    suite = MonitorSuite()
    suite.attach(cluster.trace)
    world = World(cluster, n_ranks)
    system = FenixSystem(world, n_spares=0, spare_policy="shrink")
    cfg = HeatdisConfig(local_rows=12 // n_ranks, cols=16,
                        modeled_bytes_per_rank=16e6, n_iters=30)
    main = make_elastic_heatdis_main(
        cfg, cluster, 12, n_ranks, 6, failure_plan=plan, results={},
    )

    def wrapped(rank):
        yield from system.run(world.context(rank), main)

    for r in range(n_ranks):
        world.spawn(r, wrapped(r), failure_plan=plan)
    cluster.engine.run()
    world.raise_job_errors()
    suite.finish()
    return suite, system, list(cluster.trace)


@pytest.fixture(scope="session")
def shrink_run():
    """Elastic heatdis, no spares, rank 1 killed -> shrink to 2 ranks."""
    return run_elastic_monitored(3, IterationFailure([(1, 17)]))


@pytest.fixture(scope="session")
def veloc_run():
    """Fenix+VeloC heatdis with rank 2 killed (flush/recover events)."""
    return run_monitored("fenix_veloc")


@pytest.fixture(scope="session")
def imr_run():
    """Fenix+KR+IMR heatdis with rank 1 killed (buddy events)."""
    return run_monitored("fenix_kr_imr", kill_rank=1)


def write_records(path, records, dropped=0, window=None):
    """Persist a record list as a flight-recorder file (via a live Trace)."""
    from repro.monitor.trace_io import write_trace
    from repro.sim.trace import Trace

    tr = Trace(enabled=True)
    for r in records:
        tr.emit(r.time, r.source, r.kind, **r.fields)
    tr.dropped = dropped
    if window is not None:
        tr._dropped_first, tr._dropped_last = window
    write_trace(str(path), tr)
    return str(path)


@pytest.fixture(scope="session")
def veloc_trace_file(veloc_run, tmp_path_factory):
    """The veloc_run stream persisted as a trace file for CLI tests."""
    _, _, records = veloc_run
    path = tmp_path_factory.mktemp("traces") / "veloc.trace.jsonl"
    return write_records(path, records)
