"""JsonlTraceSink: records reach disk as emitted, meta lines anywhere."""

import json

from repro.monitor.trace_io import (
    JsonlTraceSink,
    load_trace,
    read_trace,
    write_trace,
)
from repro.sim.trace import Trace


def test_records_land_per_emit(tmp_path):
    path = tmp_path / "stream.jsonl"
    tr = Trace(enabled=True)
    sink = JsonlTraceSink(str(path), trace=tr)
    assert sink.records_written == 0

    tr.emit(0.1, "engine", "tick", n=1)
    assert sink.records_written == 1
    # readable mid-run: a tailer sees the record before the run ends
    lines = path.read_text().splitlines()
    assert json.loads(lines[0])["meta"]["streaming"] is True
    assert json.loads(lines[1])["kind"] == "tick"

    tr.emit(0.2, "engine", "tick", n=2)
    sink.close()
    records, meta = read_trace(str(path))
    assert [r.fields["n"] for r in records] == [1, 2]
    assert meta["dropped"] == 0


def test_attach_replays_records_emitted_before_the_sink(tmp_path):
    tr = Trace(enabled=True)
    tr.emit(0.1, "engine", "early")
    path = tmp_path / "stream.jsonl"
    with JsonlTraceSink(str(path)) as sink:
        sink.attach(tr)
        assert sink.records_written == 1
        tr.emit(0.2, "engine", "late")
    records, _ = read_trace(str(path))
    assert [r.kind for r in records] == ["early", "late"]
    # closing unsubscribed the sink: later emits don't resurrect the file
    tr.emit(0.3, "engine", "after")
    assert len(read_trace(str(path))[0]) == 2


def test_trailing_meta_wins_and_restores_drop_accounting(tmp_path):
    path = tmp_path / "stream.jsonl"
    tr = Trace(enabled=True, max_records=2)
    with JsonlTraceSink(str(path), trace=tr):
        for i in range(5):
            tr.emit(float(i), "engine", "tick", n=i)
    # the streamed file holds ALL 5 records (the sink saw each emit even
    # though the in-memory ring only retains the last 2) ...
    records, meta = read_trace(str(path))
    assert len(records) == 5
    # ... and the trailing meta carries the ring's final drop accounting
    assert meta["dropped"] == 3
    assert meta["dropped_window"] == [0.0, 2.0]

    loaded = load_trace(str(path))
    assert loaded.dropped == 3
    assert loaded.dropped_window == (0.0, 2.0)


def test_sampled_out_round_trips_through_write_trace(tmp_path):
    from repro.telemetry import SamplingPolicy, SpanSampler

    tr = Trace(enabled=True, sampler=SpanSampler(
        SamplingPolicy(head=1, stride=10)))
    for i in range(20):
        tr.emit(float(i), "kr.rank0", "kr_region_begin", iteration=i)
    assert tr.sampled_out > 0
    path = tmp_path / "sampled.jsonl"
    write_trace(str(path), tr)
    loaded = load_trace(str(path))
    assert loaded.sampled_out == tr.sampled_out
    assert loaded.sampled_window == tr.sampled_window
