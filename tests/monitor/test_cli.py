"""Flight-recorder CLI: check / state / explain, exit codes, --json."""

import json

import pytest

from repro.monitor.__main__ import main
from tests.monitor.conftest import write_records


class TestCheck:
    def test_clean_trace_exits_zero(self, veloc_trace_file, capsys):
        assert main(["check", veloc_trace_file]) == 0
        assert "no invariant violations" in capsys.readouterr().out

    def test_json_report(self, veloc_trace_file, capsys):
        assert main(["check", veloc_trace_file, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["violations"] == []
        assert doc["dropped"] == 0

    def test_corrupted_trace_exits_one(self, veloc_run, tmp_path, capsys):
        _, _, clean = veloc_run
        records = [r for r in clean if r.kind != "revoke"]
        path = write_records(tmp_path / "bad.trace.jsonl", records)
        assert main(["check", path]) == 1
        assert "ULFMOrderMonitor" in capsys.readouterr().out

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["check", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_malformed_file_exits_two(self, tmp_path, capsys):
        path = tmp_path / "garbage.jsonl"
        path.write_text("this is not json\n")
        assert main(["check", str(path)]) == 2

    def test_dropped_window_warning(self, veloc_run, tmp_path, capsys):
        _, _, records = veloc_run
        path = write_records(tmp_path / "dropped.trace.jsonl", records,
                             dropped=7, window=(0.5, 1.5))
        assert main(["check", path]) == 0
        out = capsys.readouterr().out
        assert "dropped 7" in out
        assert "0.5" in out and "1.5" in out

    def test_live_run_with_save_trace(self, tmp_path, capsys):
        path = tmp_path / "live.trace.jsonl"
        rc = main([
            "check", "--app", "heatdis", "--strategy", "fenix_veloc",
            "--ranks", "2", "--iters", "12", "--interval", "5",
            "--kill-rank", "1", "--save-trace", str(path),
        ])
        assert rc == 0
        assert path.exists()
        # the saved trace replays clean through the same CLI
        assert main(["check", str(path)]) == 0

    def test_live_unknown_strategy_exits_two(self, capsys):
        rc = main(["check", "--strategy", "no_such_strategy",
                   "--ranks", "2", "--iters", "4"])
        assert rc == 2
        assert "unknown strategy" in capsys.readouterr().err


class TestState:
    def test_state_table(self, veloc_trace_file, capsys):
        assert main(["state", veloc_trace_file, "--at", "4.0"]) == 0
        out = capsys.readouterr().out
        assert "INITIAL" in out
        assert "SPARE" in out

    def test_state_end_of_trace(self, veloc_trace_file, capsys):
        assert main(["state", veloc_trace_file]) == 0
        # by the end, the spare has been substituted in for dead rank 2
        assert "RECOVERED" in capsys.readouterr().out


class TestExplain:
    def test_explain_renders_recovery(self, veloc_trace_file, capsys):
        assert main(["explain", veloc_trace_file, "--rank", "2"]) == 0
        out = capsys.readouterr().out
        assert "recovery of rank 2 failure" in out
        assert "t3 repair" in out
        assert "re-entry" in out

    def test_explain_unknown_rank(self, veloc_trace_file, capsys):
        assert main(["explain", veloc_trace_file, "--rank", "9"]) == 0
        assert "no failure found for rank 9" in capsys.readouterr().out


class TestUsage:
    def test_no_command_is_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main([])
        assert exc.value.code == 2
