"""The post-mortem explainer walks a failure from kill to re-entry."""

from repro.monitor.explain import explain_failure, find_failures

STAGES = (
    "t0 failure",
    "t1 detection & revoke",
    "t2 repair-gate rendezvous",
    "t3 repair",
    "t4 roles & agreement",
    "t5 restore",
    "re-entry",
)


class TestRecoveryPath:
    def test_all_stages_present_in_order(self, veloc_run):
        _, _, records = veloc_run
        text = explain_failure(records)
        positions = [text.index(s) for s in STAGES]
        assert positions == sorted(positions)

    def test_header_names_the_failed_rank(self, veloc_run):
        _, _, records = veloc_run
        assert "recovery of rank 2 failure" in explain_failure(records)

    def test_spare_substitution_shown_in_repair_stage(self, veloc_run):
        _, _, records = veloc_run
        text = explain_failure(records)
        t3 = text[text.index("t3 repair"):text.index("t4 roles")]
        assert "spare_activated" in t3
        assert "repair" in t3

    def test_restores_shown_before_reentry(self, imr_run):
        _, _, records = imr_run
        text = explain_failure(records)
        t5 = text[text.index("t5 restore"):text.index("re-entry")]
        # the recovered rank pulled its member back from the buddy
        assert "imr_restore" in t5
        assert "tier=buddy" in t5

    def test_rendezvous_lists_gate_arrivals(self, veloc_run):
        _, _, records = veloc_run
        text = explain_failure(records)
        t2 = text[text.index("t2 repair-gate"):text.index("t3 repair")]
        assert "gate_arrive" in t2


class TestSelection:
    def test_rank_filter(self, veloc_run):
        _, _, records = veloc_run
        assert "recovery of rank 2" in explain_failure(records, rank=2)
        assert "no failure found for rank 0" in explain_failure(records, rank=0)

    def test_occurrence_out_of_range(self, veloc_run):
        _, _, records = veloc_run
        text = explain_failure(records, rank=2, occurrence=5)
        assert "occurrence 5 out of range" in text

    def test_find_failures(self, veloc_run):
        _, _, records = veloc_run
        kills = find_failures(records)
        assert len(kills) == 1
        assert kills[0].fields["rank"] == 2
        assert find_failures(records, rank=3) == []


class TestDegenerateTraces:
    def test_truncated_trace_reports_missing_repair(self, veloc_run):
        _, _, records = veloc_run
        kill = find_failures(records)[0]
        truncated = records[: records.index(kill) + 1]
        text = explain_failure(truncated)
        assert "no repair found after this failure" in text

    def test_empty_trace(self):
        assert "no failure found" in explain_failure([])
