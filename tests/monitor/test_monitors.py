"""Clean protocol executions pass every invariant monitor.

Covers the acceptance criterion that the paper's failure-injection
scenarios (reduced scale) run violation-free under ``strict_monitor``,
including the PROTOCOLS.md §4 spare-exhaustion shrink path and deaths
arriving during the repair-gate wait.
"""

from repro.monitor import MonitorSuite, standard_monitors
from repro.sim import IterationFailure
from tests.monitor.conftest import run_elastic_monitored, run_monitored


class TestCleanRuns:
    def test_fenix_veloc_failure_run_is_clean(self, veloc_run):
        report, suite, records = veloc_run
        assert report.failures == 1
        assert suite.violations == []
        assert report.violations == []

    def test_fenix_kr_imr_failure_run_is_clean(self, imr_run):
        report, suite, records = imr_run
        assert suite.violations == []
        # the interesting protocol actually happened
        kinds = {r.kind for r in records}
        assert {"revoke", "repair", "role", "imr_buddy_recv"} <= kinds

    def test_fenix_kr_veloc_and_minimd_are_clean(self):
        for strategy, app in (("fenix_kr_veloc", "heatdis"),
                              ("fenix_kr_imr", "minimd")):
            report, suite, _ = run_monitored(strategy, app=app)
            assert suite.violations == [], (strategy, app)

    def test_replay_equals_online(self, veloc_run):
        """Replaying the recorded stream reports exactly what the live
        subscription did (monitors are deterministic state machines)."""
        _report, live, records = veloc_run
        replayed = MonitorSuite(standard_monitors()).replay(records)
        replayed.finish()
        assert ([ (v.monitor, v.rule) for v in replayed.violations ]
                == [ (v.monitor, v.rule) for v in live.violations ])


class TestShrinkPath:
    def test_spare_exhaustion_shrink_is_clean(self, shrink_run):
        suite, system, records = shrink_run
        assert system.resilient_comm.size == 2
        assert suite.violations == []
        kinds = {r.kind for r in records}
        assert {"revoke", "shrink", "repair", "role"} <= kinds

    def test_two_sequential_shrinks_are_clean(self):
        """Two failures, two generations -- including a death arriving
        while the protocol is between repairs."""
        suite, system, _ = run_elastic_monitored(
            4, IterationFailure([(1, 8), (2, 20)])
        )
        assert system.resilient_comm.size == 2
        assert suite.violations == []


class TestSuiteMechanics:
    def test_attach_feeds_preexisting_records(self):
        from repro.sim.trace import Trace
        tr = Trace()
        tr.emit(0.0, "fenix", "role", rank=0, role="RECOVERED", generation=0)
        suite = MonitorSuite()
        suite.attach(tr)  # the illegal record predates the attach
        suite.finish()
        assert any(v.rule == "illegal-role-edge" for v in suite.violations)

    def test_finish_detaches_and_is_idempotent(self):
        from repro.sim.trace import Trace
        tr = Trace()
        suite = MonitorSuite()
        suite.attach(tr)
        suite.finish()
        suite.finish()
        tr.emit(0.0, "fenix", "role", rank=0, role="RECOVERED", generation=0)
        assert suite.violations == []  # no longer listening

    def test_dropped_window_reported(self):
        from repro.sim.trace import Trace
        tr = Trace(max_records=2)
        suite = MonitorSuite()
        suite.attach(tr)
        for i in range(5):
            tr.emit(float(i), "s", "k")
        suite.finish()
        assert suite.dropped == 3
        assert suite.dropped_window == (0.0, 2.0)
        assert "dropped 3" in suite.report()
