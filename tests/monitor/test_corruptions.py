"""Seeded trace corruptions are each caught with a causal chain.

Acceptance criterion: at least four corruptions -- a reordered revoke, a
restore of an unflushed version, an illegal role edge, and a stale buddy
block -- are detected, and each violation's chain names the offending
records.  Clean replays of the same traces (see test_monitors) pass, so
these prove the monitors check the protocol rather than the workload.
"""

import dataclasses

from repro.monitor import MonitorSuite, layer_rank, standard_monitors


def check(records):
    suite = MonitorSuite(standard_monitors())
    suite.replay(records)
    suite.finish()
    return suite.violations


def rules_of(violations):
    return [f"{v.monitor}/{v.rule}" for v in violations]


def reorder_revoke(records):
    """Move the first revoke to after the fenix shrink record."""
    records = list(records)
    revoke = next(r for r in records if r.kind == "revoke")
    shrink = next(r for r in records
                  if r.source == "fenix" and r.kind == "shrink")
    records.remove(revoke)
    records.insert(records.index(shrink) + 1, revoke)
    return records, revoke, shrink


class TestReorderedRevoke:
    def test_detected_on_spare_repair_path(self, veloc_run):
        _, _, clean = veloc_run
        corrupted, _, shrink = reorder_revoke(clean)
        violations = check(corrupted)
        assert "ULFMOrderMonitor/revoke-before-shrink" in rules_of(violations)
        v = next(x for x in violations if x.rule == "revoke-before-shrink")
        chain_kinds = [r.kind for r in v.chain]
        # the chain walks cause to effect: the death that should have
        # triggered a revoke, then the shrink that ran without one
        assert "rank_dead" in chain_kinds
        assert v.offending is shrink

    def test_detected_on_spare_exhaustion_shrink_path(self, shrink_run):
        """PROTOCOLS.md §4: same corruption on the zero-spare shrink path."""
        _, _, clean = shrink_run
        corrupted, _, _ = reorder_revoke(clean)
        assert "ULFMOrderMonitor/revoke-before-shrink" in rules_of(
            check(corrupted)
        )

    def test_dropped_revoke_also_detected(self, veloc_run):
        _, _, clean = veloc_run
        records = [r for r in clean if r.kind != "revoke"]
        rules = rules_of(check(records))
        assert any(r.startswith("ULFMOrderMonitor/revoke-before")
                   for r in rules)


class TestRestoredUnflushedVersion:
    def test_detected(self, veloc_run):
        _, _, clean = veloc_run
        recover = next(r for r in clean
                       if r.kind == "recover"
                       and r.fields.get("tier") in ("bb", "pfs"))
        rank = layer_rank(recover.source)[1]
        version = recover.fields["version"]

        def backs(rec):
            if rec.kind != "flush_done":
                return False
            key = rec.fields.get("key") or ()
            return len(key) == 4 and key[2] == version and key[3] == rank

        records = [r for r in clean if not backs(r)]
        violations = check(records)
        assert "FlushMonitor/restore-unflushed" in rules_of(violations)
        v = next(x for x in violations if x.rule == "restore-unflushed")
        assert v.offending is recover
        assert str(version) in v.message


class TestIllegalRoleEdge:
    def test_detected(self, veloc_run):
        _, _, clean = veloc_run
        records = list(clean)
        role = next(r for r in records
                    if r.kind == "role" and r.fields.get("role") == "RECOVERED")
        bad = dataclasses.replace(
            role, fields={**role.fields, "role": "SURVIVOR"}
        )
        records[records.index(role)] = bad
        violations = check(records)
        assert "RoleTransitionMonitor/illegal-role-edge" in rules_of(violations)
        v = next(x for x in violations if x.rule == "illegal-role-edge")
        assert v.offending is bad
        # the chain includes the previous role record proving the edge
        assert any(r.kind == "role" and r is not bad for r in v.chain)


class TestStaleBuddy:
    def test_detected(self, imr_run):
        _, _, clean = imr_run
        records = list(clean)
        restore = next(r for r in records
                       if r.kind == "imr_restore"
                       and r.fields.get("tier") == "buddy")
        bad = dataclasses.replace(
            restore,
            fields={**restore.fields,
                    "version": restore.fields["version"] + 10},
        )
        records[records.index(restore)] = bad
        violations = check(records)
        assert "BuddyMonitor/stale-buddy" in rules_of(violations)
        v = next(x for x in violations if x.rule == "stale-buddy")
        assert v.offending is bad


class TestCleanReplays:
    def test_uncorrupted_traces_stay_clean(self, veloc_run, imr_run):
        for _, _, records in (veloc_run, imr_run):
            assert check(records) == []
