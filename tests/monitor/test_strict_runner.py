"""strict_monitor wiring in the harness runner."""

import pytest

from repro.apps.heatdis import HeatdisConfig
from repro.experiments.common import paper_env
from repro.harness.runner import run_heatdis_job, strict_monitor_default
from repro.monitor import (
    InvariantViolationError,
    MonitorSuite,
    ProtocolMonitor,
)
from repro.sim.failures import IterationFailure


class AlwaysViolate(ProtocolMonitor):
    """Flags the first record it sees -- exercises the strict path."""

    def feed(self, rec):
        if not self.violations:
            self.violate("always", "synthetic violation for testing", [rec])


def run_job(**kwargs):
    env = paper_env(3, n_spares=1, pfs_servers=2)
    plan = IterationFailure.between_checkpoints(1, 5, 1)
    return run_heatdis_job(
        env, "fenix_veloc", 2, HeatdisConfig(n_iters=12), 5,
        plan=plan, **kwargs,
    )


class TestStrictMode:
    def test_strict_raises_on_violation(self):
        suite = MonitorSuite([AlwaysViolate()])
        with pytest.raises(InvariantViolationError) as exc:
            run_job(strict_monitor=True, monitor=suite)
        assert "AlwaysViolate/always" in str(exc.value)

    def test_non_strict_reports_violations(self):
        suite = MonitorSuite([AlwaysViolate()])
        report = run_job(strict_monitor=False, monitor=suite)
        assert len(report.violations) == 1
        assert report.violations[0].rule == "always"

    def test_strict_clean_run_returns_report(self):
        # no explicit suite: strict mode auto-creates the standard one
        report = run_job(strict_monitor=True)
        assert report.failures == 1
        assert report.violations == []

    def test_default_off_means_no_monitoring_overhead(self):
        report = run_job()
        assert report.violations == []


class TestEnvDefault:
    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("", False), ("no", False), ("off", False),
    ])
    def test_env_values(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_STRICT_MONITOR", value)
        assert strict_monitor_default() is expected

    def test_unset_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_STRICT_MONITOR", raising=False)
        assert strict_monitor_default() is False

    def test_env_turns_on_strict_run(self, monkeypatch):
        monkeypatch.setenv("REPRO_STRICT_MONITOR", "1")
        report = run_job()  # strict resolved from the environment
        assert report.violations == []

    def test_explicit_param_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_STRICT_MONITOR", "1")
        suite = MonitorSuite([AlwaysViolate()])
        report = run_job(strict_monitor=False, monitor=suite)
        assert len(report.violations) == 1  # reported, not raised
