"""Parallel executor: determinism, ordering, and jobs semantics."""

import json

import pytest

from repro.apps import HeatdisConfig
from repro.experiments.common import paper_env
from repro.harness.report import reports_to_json
from repro.parallel import (
    CellSpec,
    PlanSpec,
    execute_cell,
    parallel_map,
    resolve_jobs,
    run_cells,
)


def small_spec(strategy="kr_veloc", n_ranks=2, seed=1, telemetry=False,
               plan=None, label=""):
    cfg = HeatdisConfig(
        local_rows=8, cols=16, modeled_bytes_per_rank=16e6, n_iters=12,
    )
    if plan is None:
        plan = PlanSpec.between_checkpoints(1, 4, 1)
    return CellSpec(
        app="heatdis",
        strategy=strategy,
        n_ranks=n_ranks,
        config=cfg,
        ckpt_interval=4,
        env=paper_env(n_ranks + 1, seed=seed, pfs_servers=1),
        plan=plan,
        telemetry=telemetry,
        label=label,
    )


class TestJobsSemantics:
    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) >= 1
        with pytest.raises(ValueError):
            resolve_jobs(-1)

    def test_results_come_back_in_input_order(self):
        specs = [small_spec(label=f"cell{i}", seed=i + 1) for i in range(3)]
        results = run_cells(specs, jobs=2)
        assert [r.label for r in results] == ["cell0", "cell1", "cell2"]


class TestDeterminism:
    def test_parallel_reports_byte_identical_to_sequential(self):
        """The acceptance criterion: same cells, --jobs 4 vs sequential."""
        specs = [
            small_spec("kr_veloc"),
            small_spec("fenix_kr_veloc"),
            small_spec("none", plan=PlanSpec.none()),
        ]
        seq = run_cells(specs, jobs=1)
        par = run_cells(specs, jobs=4)
        seq_json = reports_to_json([r.report for r in seq])
        par_json = reports_to_json([r.report for r in par])
        assert seq_json == par_json
        assert [r.failures for r in seq] == [r.failures for r in par]

    def test_telemetered_run_identical_across_pool(self):
        spec = small_spec("fenix_kr_veloc", telemetry=True)
        seq = run_cells([spec], jobs=1)[0]
        par = run_cells([spec, spec], jobs=2)[0]
        assert par.report.telemetry is not None
        assert json.dumps(seq.report.telemetry, sort_keys=True) == \
            json.dumps(par.report.telemetry, sort_keys=True)

    def test_exponential_plan_failures_match(self):
        plan = PlanSpec.exponential(200.0, seed=3, max_failures=2)
        spec = small_spec("fenix_kr_veloc", n_ranks=4, plan=plan)
        seq = run_cells([spec], jobs=1)[0]
        par = run_cells([spec, spec], jobs=2)[0]
        assert seq.failures == par.failures
        assert seq.report.wall_time == par.report.wall_time


class TestPlanSpec:
    def test_between_checkpoints_matches_iteration_failure(self):
        from repro.sim import IterationFailure

        spec = PlanSpec.between_checkpoints(1, 9, 4, fraction=0.95)
        direct = IterationFailure.between_checkpoints(1, 9, 4, fraction=0.95)
        built = spec.build()
        assert built.pending == direct.pending

    def test_unknown_kind_rejected(self):
        from repro.util.errors import ConfigError

        with pytest.raises(ConfigError):
            PlanSpec(kind="cosmic-rays").build()

    def test_unknown_app_rejected(self):
        from repro.util.errors import ConfigError

        with pytest.raises(ConfigError, match="minimd"):
            CellSpec(
                app="nbody", strategy="none", n_ranks=2,
                config=HeatdisConfig(), ckpt_interval=4,
                env=paper_env(3, pfs_servers=1),
            )


class TestParallelMap:
    def test_matches_sequential_map(self):
        items = list(range(8))
        assert parallel_map(str, items, jobs=1) == \
            parallel_map(str, items, jobs=3) == [str(i) for i in items]

    def test_empty(self):
        assert parallel_map(str, [], jobs=4) == []


class TestExecuteCellKeepsPayloads:
    def test_inline_execution_keeps_results(self):
        """Sequential callers still get per-rank application payloads
        (the figure tests assert on recovered grids)."""
        result = execute_cell(small_spec("none", plan=PlanSpec.none()))
        assert len(result.report.results) == 2

    def test_pool_execution_strips_results(self):
        spec = small_spec("none", plan=PlanSpec.none())
        par = run_cells([spec, spec], jobs=2)[0]
        assert par.report.results == {}
