"""Run cache: content addressing, hit/miss behavior, invalidation."""

import dataclasses
import json

from repro.apps import HeatdisConfig
from repro.experiments.common import paper_env
from repro.harness.report import reports_to_json
from repro.parallel import (
    CellSpec,
    PlanSpec,
    RunCache,
    cache_key,
    code_fingerprint,
    run_cells,
)
from repro.parallel import spec as spec_mod


def small_spec(seed=1, n_iters=12, label=""):
    cfg = HeatdisConfig(
        local_rows=8, cols=16, modeled_bytes_per_rank=16e6, n_iters=n_iters,
    )
    return CellSpec(
        app="heatdis",
        strategy="kr_veloc",
        n_ranks=2,
        config=cfg,
        ckpt_interval=4,
        env=paper_env(3, seed=seed, pfs_servers=1),
        plan=PlanSpec.between_checkpoints(1, 4, 1),
        label=label,
    )


class TestCacheKey:
    def test_stable_for_equal_specs(self):
        assert cache_key(small_spec()) == cache_key(small_spec())

    def test_label_excluded_from_identity(self):
        assert cache_key(small_spec(label="a")) == \
            cache_key(small_spec(label="b"))

    def test_config_change_changes_key(self):
        assert cache_key(small_spec(n_iters=12)) != \
            cache_key(small_spec(n_iters=13))

    def test_seed_change_changes_key(self):
        assert cache_key(small_spec(seed=1)) != cache_key(small_spec(seed=2))

    def test_code_fingerprint_feeds_key(self):
        # the fingerprint is a stable digest of the package sources
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64


class TestCacheHit:
    def test_hit_skips_simulation_and_matches(self, tmp_path):
        """A cache hit returns the identical report without re-simulating
        (asserted via the module run-counter)."""
        cache = RunCache(tmp_path)
        spec = small_spec()

        before = spec_mod.RUNS_EXECUTED
        first = run_cells([spec], jobs=1, cache=cache)[0]
        assert spec_mod.RUNS_EXECUTED == before + 1

        second = run_cells([spec], jobs=1, cache=cache)[0]
        assert spec_mod.RUNS_EXECUTED == before + 1  # no new simulation
        assert cache.hits == 1

        assert reports_to_json([first.report]) == \
            reports_to_json([second.report])
        assert first.failures == second.failures

    def test_changed_cell_misses(self, tmp_path):
        cache = RunCache(tmp_path)
        run_cells([small_spec(seed=1)], jobs=1, cache=cache)
        before = spec_mod.RUNS_EXECUTED
        run_cells([small_spec(seed=2)], jobs=1, cache=cache)
        assert spec_mod.RUNS_EXECUTED == before + 1

    def test_corrupt_entry_treated_as_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = small_spec()
        run_cells([spec], jobs=1, cache=cache)
        entry = tmp_path / f"{cache_key(spec)}.json"
        entry.write_text("{not json")
        assert cache.get(spec) is None

    def test_clear_removes_entries(self, tmp_path):
        cache = RunCache(tmp_path)
        run_cells([small_spec()], jobs=1, cache=cache)
        assert cache.clear() == 1
        assert cache.get(small_spec()) is None

    def test_entries_are_valid_json(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = small_spec()
        run_cells([spec], jobs=1, cache=cache)
        entry = json.loads((tmp_path / f"{cache_key(spec)}.json").read_text())
        assert entry["schema"] == 1
        assert entry["report"]["strategy"] == "kr_veloc"


class TestCampaignIntegration:
    def test_campaign_with_cache_and_jobs_matches_plain(self, tmp_path):
        from repro.experiments.campaign import run_campaign

        kwargs = dict(n_ranks=2, n_iters=12, n_spares=1, max_failures=1)
        plain = run_campaign(**kwargs)
        cached = run_campaign(**kwargs, jobs=2, cache=RunCache(tmp_path))
        again = run_campaign(**kwargs, jobs=2, cache=RunCache(tmp_path))
        for study in (cached, again):
            assert study.ideal_wall == plain.ideal_wall
            for a, b in zip(plain.results, study.results):
                assert a.strategy == b.strategy
                assert a.wall_time == b.wall_time
                assert a.failures == b.failures
                assert a.report.attempts == b.report.attempts

    def test_unknown_strategy_keyerror_names_known(self):
        import pytest

        from repro.experiments.campaign import CampaignResult, CampaignStudy
        from repro.harness import RunReport

        rep = RunReport(strategy="kr_veloc", app="heatdis", n_ranks=2,
                        wall_time=2.0, attempts=1, failures=0, buckets={},
                        results={})
        study = CampaignStudy(
            ideal_wall=1.0,
            results=[CampaignResult("kr_veloc", rep, failures=0)],
        )
        with pytest.raises(KeyError, match="warp-drive") as exc_info:
            study.efficiency("warp-drive")
        assert "kr_veloc" in str(exc_info.value)
        with pytest.raises(KeyError, match="warp-drive"):
            study.result("warp-drive")
        assert study.efficiency("kr_veloc") == 0.5
