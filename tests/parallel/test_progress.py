"""Live campaign progress: sinks, counters, ETA, executor integration."""

import io
import json

import pytest

from repro.apps import HeatdisConfig
from repro.experiments.common import paper_env
from repro.parallel import (
    CampaignProgress,
    CellSpec,
    JsonlProgress,
    PlanSpec,
    RunCache,
    TTYProgress,
    default_progress,
    parallel_map,
    run_cells,
)
from repro.parallel.progress import PROGRESS_SCHEMA


class ListSink:
    def __init__(self):
        self.events = []
        self.closed = False

    def emit(self, event):
        self.events.append(event)

    def close(self):
        self.closed = True


def small_spec(label="cell", seed=0):
    cfg = HeatdisConfig(n_iters=6, modeled_bytes_per_rank=1e6)
    return CellSpec(
        app="heatdis", strategy="kr_veloc", n_ranks=2, config=cfg,
        ckpt_interval=3, env=paper_env(3, n_spares=0, seed=seed,
                                       pfs_servers=1),
        plan=PlanSpec.none(), label=label,
    )


class TestCampaignProgress:
    def test_event_sequence_and_counters(self):
        sink = ListSink()
        p = CampaignProgress([sink], jobs=2)
        p.add_cells(2)
        p.cell_submitted()
        p.cell_submitted()
        p.cell_done(0, "a", "fresh", host_seconds=2.0)
        p.cell_done(1, "b", "cached")
        p.finish()
        kinds = [e["event"] for e in sink.events]
        assert kinds == ["campaign_start", "cell_done", "cell_done",
                         "campaign_end"]
        start = sink.events[0]
        assert start["schema"] == PROGRESS_SCHEMA
        assert start["total"] == 2 and start["jobs"] == 2
        end = sink.events[-1]
        assert end["cached"] == 1 and end["fresh"] == 1
        assert end["failed"] == 0
        assert sink.closed

    def test_start_emitted_once_totals_accumulate(self):
        sink = ListSink()
        p = CampaignProgress([sink], jobs=1)
        p.add_cells(1)
        p.add_cells(3)  # second sweep of the same campaign
        starts = [e for e in sink.events if e["event"] == "campaign_start"]
        assert len(starts) == 1
        assert p.total == 4

    def test_eta_from_fresh_durations(self):
        p = CampaignProgress(jobs=2)
        p.add_cells(4)
        assert p.eta_s() is None  # nothing finished yet
        p.cell_done(0, "a", "fresh", host_seconds=4.0)
        p.cell_done(1, "b", "fresh", host_seconds=2.0)
        # 2 remaining x mean(3s) / 2 workers
        assert p.eta_s() == pytest.approx(3.0)

    def test_cached_cells_do_not_skew_eta(self):
        p = CampaignProgress(jobs=1)
        p.add_cells(3)
        p.cell_done(0, "a", "cached")
        assert p.eta_s() is None
        p.cell_done(1, "b", "fresh", host_seconds=5.0)
        assert p.eta_s() == pytest.approx(5.0)

    def test_utilization_clamped(self):
        p = CampaignProgress(jobs=2)
        p.add_cells(4)
        assert p.utilization() == 0.0
        for _ in range(4):
            p.cell_submitted()
        assert p.utilization() == 1.0

    def test_unknown_state_rejected(self):
        p = CampaignProgress(jobs=1)
        p.add_cells(1)
        with pytest.raises(ValueError):
            p.cell_done(0, "a", "exploded")


class TestSinks:
    def test_jsonl_one_object_per_line(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        p = CampaignProgress([JsonlProgress(str(path))], jobs=1)
        p.add_cells(1)
        p.cell_done(0, "a", "fresh", host_seconds=0.5)
        p.finish()
        lines = path.read_text().splitlines()
        events = [json.loads(line) for line in lines]
        assert [e["event"] for e in events] == \
            ["campaign_start", "cell_done", "campaign_end"]

    def test_tty_single_overwritten_line(self):
        out = io.StringIO()
        p = CampaignProgress([TTYProgress(out)], jobs=1)
        p.add_cells(2)
        p.cell_done(0, "a", "cached")
        p.cell_done(1, "b", "fresh", host_seconds=0.1)
        p.finish()
        text = out.getvalue()
        assert text.count("\r") == 3  # every update rewrites one line
        assert text.endswith("\n")  # final state survives in scrollback
        assert "campaign done: 2 cells" in text

    def test_default_progress_wiring(self, tmp_path):
        path = tmp_path / "p.jsonl"
        p = default_progress(2, jsonl_path=str(path))
        assert isinstance(p.sinks[0], JsonlProgress)
        p.finish()
        # no JSONL path + non-tty stream -> no tracker at all
        assert default_progress(2, stream=io.StringIO()) is None
        forced = default_progress(2, tty=True, stream=io.StringIO())
        assert isinstance(forced.sinks[0], TTYProgress)


class TestExecutorIntegration:
    def test_run_cells_emits_one_event_per_cell(self):
        sink = ListSink()
        progress = CampaignProgress([sink], jobs=2)
        specs = [small_spec(f"c{i}", seed=i) for i in range(3)]
        run_cells(specs, jobs=2, progress=progress)
        done = [e for e in sink.events if e["event"] == "cell_done"]
        assert len(done) == 3
        assert {e["index"] for e in done} == {0, 1, 2}
        assert all(e["state"] == "fresh" for e in done)
        assert all(e["host_seconds"] > 0 for e in done)

    def test_cache_hits_reported_as_cached(self, tmp_path):
        cache = RunCache(str(tmp_path / "cache"))
        specs = [small_spec(f"c{i}", seed=i) for i in range(2)]
        run_cells(specs, jobs=1, cache=cache)
        sink = ListSink()
        progress = CampaignProgress([sink], jobs=1)
        run_cells(specs, jobs=1, cache=cache, progress=progress)
        done = [e for e in sink.events if e["event"] == "cell_done"]
        assert [e["state"] for e in done] == ["cached", "cached"]
        assert done[-1]["cache_hits"] == 2

    def test_progress_does_not_perturb_results(self):
        from repro.harness.report import reports_to_json

        specs = [small_spec(f"c{i}", seed=i) for i in range(2)]
        silent = run_cells(specs, jobs=1)
        progress = CampaignProgress([ListSink()], jobs=2)
        tracked = run_cells(specs, jobs=2, progress=progress)
        assert reports_to_json([r.report for r in silent]) == \
            reports_to_json([r.report for r in tracked])

    def test_parallel_map_progress(self):
        sink = ListSink()
        progress = CampaignProgress([sink], jobs=2)
        out = parallel_map(abs, [-1, 2, -3], jobs=2, progress=progress)
        assert out == [1, 2, 3]
        done = [e for e in sink.events if e["event"] == "cell_done"]
        assert len(done) == 3
