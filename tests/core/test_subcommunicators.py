"""Checkpointing over sub-communicators (comm split + per-group contexts)."""

import numpy as np
import pytest

from repro.core import KRConfig, every_nth, make_context
from repro.kokkos import KokkosRuntime
from repro.mpi import SUM, World
from repro.sim import Cluster, ClusterSpec, NetworkSpec, NodeSpec
from repro.veloc import VeloCService


def make_stack(n_ranks):
    cluster = Cluster(
        ClusterSpec(
            n_nodes=n_ranks,
            node=NodeSpec(nic_bandwidth=1e9, nic_latency=1e-6,
                          memory_bandwidth=1e10),
            network=NetworkSpec(fabric_latency=0.0),
        )
    )
    world = World(cluster, n_ranks)
    service = VeloCService(cluster)
    return cluster, world, service


class TestSplitCheckpointing:
    def test_two_groups_checkpoint_independently(self):
        """Each split group runs its own context; distinct checkpoint
        names keep the groups' version keys apart (sub-communicator ranks
        overlap, so the name carries the group identity)."""
        cluster, world, service = make_stack(4)
        results = {}

        def main(rank):
            h = world.comm_world_handle(rank)
            color = h.rank % 2
            sub = yield from h.split(color=color)
            config = KRConfig(backend="veloc", filter=every_nth(1, offset=-1))
            kr = make_context(sub, config, cluster, veloc_service=service,
                              ckpt_name=f"group{color}")
            rt = KokkosRuntime()
            v = rt.view("x", shape=(2,))

            def region():
                total = yield from sub.allreduce(float(h.rank), op=SUM)
                v.fill(total)

            yield from kr.checkpoint("loop", 0, region)
            v.fill(-1.0)
            kr._latest_cache = None
            latest = yield from kr.latest_version()
            yield from kr.checkpoint("loop", latest, lambda: None)
            results[rank] = (color, float(v[0]))

        for r in range(4):
            world.spawn(r, main(r))
        cluster.engine.run()
        world.raise_job_errors()
        # evens {0,2} sum 2.0; odds {1,3} sum 4.0 -- restored per group
        assert results[0] == (0, 2.0)
        assert results[2] == (0, 2.0)
        assert results[1] == (1, 4.0)
        assert results[3] == (1, 4.0)

    def test_same_name_would_collide_across_groups(self):
        """Documented sharp edge: sub-communicator ranks overlap, so two
        groups sharing one checkpoint name write to the same keys."""
        cluster, world, service = make_stack(2)
        seen = {}

        def main(rank):
            h = world.comm_world_handle(rank)
            sub = yield from h.split(color=h.rank)  # singleton groups
            config = KRConfig(backend="veloc", filter=every_nth(1, offset=-1))
            kr = make_context(sub, config, cluster, veloc_service=service,
                              ckpt_name="shared")
            rt = KokkosRuntime()
            v = rt.view("x", shape=(1,))
            yield from kr.checkpoint("loop", 0, lambda: v.fill(float(rank)))
            yield from kr.backend.client.wait_flushes()
            seen[rank] = kr.backend.client._key(0)

        for r in range(2):
            world.spawn(r, main(r))
        cluster.engine.run()
        # both singleton groups have sub-rank 0 -> identical keys
        assert seen[0] == seen[1]
