"""Heterogeneous-device support: staging device views around C/R.

The paper's Figure 3 reserves a "Heterogenous Device Data Management" box
(unexplored in its evaluation, called for in future work); here device
views are first-class and their checkpoint staging cost is modelled.
"""

import numpy as np
import pytest

from repro.kokkos import DeviceSpace, KokkosRuntime
from repro.util.errors import ConfigError
from tests.core.test_context import run_kr


class TestDeviceViews:
    def test_default_space_is_host(self):
        rt = KokkosRuntime()
        assert not rt.view("h", shape=(2,)).on_device

    def test_device_runtime_defaults_device(self):
        rt = KokkosRuntime(space=DeviceSpace())
        assert rt.view("d", shape=(2,)).on_device

    def test_explicit_space_overrides(self):
        rt = KokkosRuntime()
        assert rt.view("d", shape=(2,), space="device").on_device
        rt2 = KokkosRuntime(space=DeviceSpace())
        assert not rt2.view("h", shape=(2,), space="host").on_device

    def test_bad_space_rejected(self):
        rt = KokkosRuntime()
        with pytest.raises(ConfigError):
            rt.view("x", shape=(2,), space="fpga")

    def test_subview_inherits_space(self):
        rt = KokkosRuntime(space=DeviceSpace())
        v = rt.view("d", shape=(8,))
        assert v.subview(slice(0, 4)).on_device


class TestDeviceCheckpointStaging:
    def _ckpt_time(self, space):
        def body(kr, h, rt2):
            rt = KokkosRuntime(space=DeviceSpace() if space == "device" else None)
            v = rt.view("big", shape=(4,), modeled_nbytes=1e9, space=space)
            yield from kr.checkpoint("r", 0, lambda: v.fill(1.0))
            return h.ctx.account.get("checkpoint_function")

        results, _ = run_kr(1, body)
        return results[0]

    def test_device_checkpoint_pays_staging(self):
        host = self._ckpt_time("host")
        device = self._ckpt_time("device")
        assert device > host
        # 1 GB over a 12 GiB/s link ~ 78 ms of staging
        assert device - host == pytest.approx(1e9 / (12 * 1024**3), rel=0.05)

    def test_device_restore_pays_staging(self):
        def body(kr, h, rt2):
            v = rt2.view("big", shape=(4,), modeled_nbytes=1e9, space="device")
            yield from kr.checkpoint("r", 0, lambda: v.fill(1.0))
            kr._latest_cache = None
            latest = yield from kr.latest_version()
            v.fill(0.0)
            yield from kr.checkpoint("r", latest, lambda: None)
            return (float(v[0]), h.ctx.account.get("data_recovery"))

        results, _ = run_kr(1, body)
        value, recovery_time = results[0]
        assert value == 1.0  # data correctly restored
        assert recovery_time > 1e9 / (12 * 1024**3)

    def test_mixed_views_charge_only_device_bytes(self):
        def body(kr, h, rt):
            dv = rt.view("dev", shape=(2,), modeled_nbytes=5e8, space="device")
            hv = rt.view("host", shape=(2,), modeled_nbytes=5e8)

            def region():
                dv.fill(1.0)
                hv.fill(1.0)

            yield from kr.checkpoint("r", 0, region)
            return h.ctx.account.get("checkpoint_function")

        results, _ = run_kr(1, body)
        staging = 5e8 / (12 * 1024**3)
        # memcpy of 1e9 + staging of only the 5e8 device bytes
        assert results[0] == pytest.approx(staging + 1e9 / (10 * 1024**3),
                                           rel=0.5)


class TestDeviceStagingIncremental:
    """Device views on the incremental data path.

    Staging moves the whole device-resident region across the device
    link regardless of the dirty fraction (the host-side shadow is the
    incremental piece), but the dirty-chunk lifecycle around a staged
    checkpoint/restore must match the host-view contract: tracked writes
    accumulate, the commit clears them, a restore re-dirties everything.
    """

    def test_staged_checkpoint_clears_dirty_chunks(self):
        def body(kr, h, rt):
            v = rt.view("dev", shape=(64, 16), chunk_bytes=512,
                        space="device")

            def region():
                v[5] = 1.0

            yield from kr.checkpoint("r", 0, region)
            return (v.dirty_fraction, kr.backend.client.stats["dirty_bytes"])

        results, _ = run_kr(1, body)
        dirty_after, dirty_bytes = results[0]
        assert dirty_after == 0.0  # commit checkpointed + cleared
        assert dirty_bytes > 0.0  # first version is a full copy

    def test_staged_incremental_second_checkpoint_is_partial(self):
        def body(kr, h, rt):
            v = rt.view("dev", shape=(64, 16), chunk_bytes=512,
                        space="device")
            yield from kr.checkpoint("r", 0, lambda: v.fill(1.0))
            yield from kr.checkpoint("r", 1, lambda: v.__setitem__(5, 2.0))
            s = kr.backend.client.stats
            return (s["checkpoint_bytes"], s["dirty_bytes"])

        results, _ = run_kr(1, body)
        total, dirty = results[0]
        # full first version + 1 of 16 chunks on the second
        assert dirty == pytest.approx(total / 2 * (1 + 1 / 16))

    def test_staged_restore_marks_all_dirty_again(self):
        def body(kr, h, rt):
            v = rt.view("dev", shape=(64, 16), chunk_bytes=512,
                        space="device")
            yield from kr.checkpoint("r", 0, lambda: v.fill(3.0))
            kr._latest_cache = None
            latest = yield from kr.latest_version()
            v.fill(0.0)
            yield from kr.checkpoint("r", latest, lambda: None)  # restores
            dirty_after_restore = v.dirty_fraction
            yield from kr.checkpoint("r", 1, lambda: None)
            s = kr.backend.client.stats
            return (float(v[0, 0]), dirty_after_restore, s)

        results, _ = run_kr(1, body)
        value, dirty_after_restore, stats = results[0]
        assert value == 3.0  # restored bit-exactly through staging
        assert dirty_after_restore == 1.0
        # both checkpoints were full copies: the one before the restore
        # and the post-restore one (load_data re-dirtied the view)
        assert stats["dirty_bytes"] == pytest.approx(
            stats["checkpoint_bytes"])

    def test_staging_cost_unchanged_by_dirty_fraction(self):
        # the device link moves the full modelled region either way; only
        # the host memcpy shrinks.  Compare second-checkpoint cost with a
        # tiny vs full dirty footprint at a modelled size where staging
        # dominates, and assert the incremental one is still cheaper.
        def run(partial):
            def body(kr, h, rt):
                v = rt.view("dev", shape=(64, 16), chunk_bytes=512,
                            modeled_nbytes=1e9, space="device")
                yield from kr.checkpoint("r", 0, lambda: v.fill(1.0))
                before = h.ctx.account.get("checkpoint_function")

                def region():
                    if partial:
                        v[5] = 2.0
                    else:
                        v.fill(2.0)

                yield from kr.checkpoint("r", 1, region)
                return h.ctx.account.get("checkpoint_function") - before

            results, _ = run_kr(1, body)
            return results[0]

        partial_cost, full_cost = run(True), run(False)
        staging = 1e9 / (12 * 1024**3)
        assert partial_cost < full_cost
        # both still pay the full staging transfer
        assert partial_cost > staging
