"""Heterogeneous-device support: staging device views around C/R.

The paper's Figure 3 reserves a "Heterogenous Device Data Management" box
(unexplored in its evaluation, called for in future work); here device
views are first-class and their checkpoint staging cost is modelled.
"""

import numpy as np
import pytest

from repro.kokkos import DeviceSpace, KokkosRuntime
from repro.util.errors import ConfigError
from tests.core.test_context import run_kr


class TestDeviceViews:
    def test_default_space_is_host(self):
        rt = KokkosRuntime()
        assert not rt.view("h", shape=(2,)).on_device

    def test_device_runtime_defaults_device(self):
        rt = KokkosRuntime(space=DeviceSpace())
        assert rt.view("d", shape=(2,)).on_device

    def test_explicit_space_overrides(self):
        rt = KokkosRuntime()
        assert rt.view("d", shape=(2,), space="device").on_device
        rt2 = KokkosRuntime(space=DeviceSpace())
        assert not rt2.view("h", shape=(2,), space="host").on_device

    def test_bad_space_rejected(self):
        rt = KokkosRuntime()
        with pytest.raises(ConfigError):
            rt.view("x", shape=(2,), space="fpga")

    def test_subview_inherits_space(self):
        rt = KokkosRuntime(space=DeviceSpace())
        v = rt.view("d", shape=(8,))
        assert v.subview(slice(0, 4)).on_device


class TestDeviceCheckpointStaging:
    def _ckpt_time(self, space):
        def body(kr, h, rt2):
            rt = KokkosRuntime(space=DeviceSpace() if space == "device" else None)
            v = rt.view("big", shape=(4,), modeled_nbytes=1e9, space=space)
            yield from kr.checkpoint("r", 0, lambda: v.fill(1.0))
            return h.ctx.account.get("checkpoint_function")

        results, _ = run_kr(1, body)
        return results[0]

    def test_device_checkpoint_pays_staging(self):
        host = self._ckpt_time("host")
        device = self._ckpt_time("device")
        assert device > host
        # 1 GB over a 12 GiB/s link ~ 78 ms of staging
        assert device - host == pytest.approx(1e9 / (12 * 1024**3), rel=0.05)

    def test_device_restore_pays_staging(self):
        def body(kr, h, rt2):
            v = rt2.view("big", shape=(4,), modeled_nbytes=1e9, space="device")
            yield from kr.checkpoint("r", 0, lambda: v.fill(1.0))
            kr._latest_cache = None
            latest = yield from kr.latest_version()
            v.fill(0.0)
            yield from kr.checkpoint("r", latest, lambda: None)
            return (float(v[0]), h.ctx.account.get("data_recovery"))

        results, _ = run_kr(1, body)
        value, recovery_time = results[0]
        assert value == 1.0  # data correctly restored
        assert recovery_time > 1e9 / (12 * 1024**3)

    def test_mixed_views_charge_only_device_bytes(self):
        def body(kr, h, rt):
            dv = rt.view("dev", shape=(2,), modeled_nbytes=5e8, space="device")
            hv = rt.view("host", shape=(2,), modeled_nbytes=5e8)

            def region():
                dv.fill(1.0)
                hv.fill(1.0)

            yield from kr.checkpoint("r", 0, region)
            return h.ctx.account.get("checkpoint_function")

        results, _ = run_kr(1, body)
        staging = 5e8 / (12 * 1024**3)
        # memcpy of 1e9 + staging of only the 5e8 device bytes
        assert results[0] == pytest.approx(staging + 1e9 / (10 * 1024**3),
                                           rel=0.5)
