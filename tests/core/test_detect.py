"""View discovery from checkpoint-region functions."""

import functools

import numpy as np

from repro.core import discover_views
from repro.kokkos import KokkosRuntime


def test_closure_capture():
    rt = KokkosRuntime()
    v = rt.view("x", shape=(4,))

    def region():
        v[0] = 1.0

    assert discover_views(region) == [v]


def test_multiple_captures_in_order():
    rt = KokkosRuntime()
    a = rt.view("a", shape=(2,))
    b = rt.view("b", shape=(2,))

    def region():
        a[0] = b[0]

    found = discover_views(region)
    assert set(found) == {a, b}
    assert len(found) == 2


def test_container_captures():
    rt = KokkosRuntime()
    views = [rt.view(f"v{i}", shape=(2,)) for i in range(3)]
    table = {"fields": views}

    def region():
        return table

    assert set(discover_views(region)) == set(views)


def test_object_attribute_capture():
    rt = KokkosRuntime()

    class State:
        def __init__(self):
            self.temps = rt.view("temps", shape=(4,))
            self.other = 42

    state = State()

    def region():
        state.temps[0] = 1.0

    assert discover_views(region) == [state.temps]


def test_nested_function_discovery():
    # "data being used deep in nested function calls"
    rt = KokkosRuntime()
    deep = rt.view("deep", shape=(2,))

    def inner():
        deep[0] = 1.0

    def middle():
        inner()

    def region():
        middle()

    assert discover_views(region) == [deep]


def test_partial_arguments():
    rt = KokkosRuntime()
    v = rt.view("p", shape=(2,))

    def kernel(view, scale):
        view[0] = scale

    region = functools.partial(kernel, v, 2.0)
    assert discover_views(region) == [v]


def test_default_arguments():
    rt = KokkosRuntime()
    v = rt.view("d", shape=(2,))

    def region(view=v):
        view[0] = 1.0

    assert discover_views(region) == [v]


def test_bound_method_receiver():
    rt = KokkosRuntime()

    class App:
        def __init__(self):
            self.data = rt.view("bound", shape=(2,))

        def step(self):
            self.data[0] += 1.0

    app = App()
    assert discover_views(app.step) == [app.data]


def test_duplicate_objects_deduped():
    rt = KokkosRuntime()
    v = rt.view("x", shape=(2,))
    pair = (v, v)

    def region():
        return pair

    assert discover_views(region) == [v]


def test_extra_root():
    rt = KokkosRuntime()
    v = rt.view("sub", shape=(2,))

    def region():
        pass

    assert discover_views(region, extra=[v]) == [v]


def test_depth_bound_terminates_on_cycles():
    rt = KokkosRuntime()
    v = rt.view("x", shape=(2,))
    a = {}
    b = {"a": a, "v": v}
    a["b"] = b  # cycle

    def region():
        return a

    assert v in discover_views(region)
