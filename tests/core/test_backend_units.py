"""Backend-layer unit tests: region ids, StdFile specifics."""

import numpy as np
import pytest

from repro.core.backends import region_id_for
from repro.core.backends.stdfile import StdFileBackend
from repro.kokkos import KokkosRuntime
from repro.mpi import World
from repro.sim import Cluster, ClusterSpec
from repro.util.errors import ReproError


class TestRegionIds:
    def test_stable_across_calls(self):
        assert region_id_for("heatdis.grid") == region_id_for("heatdis.grid")

    def test_distinct_labels_distinct_ids(self):
        labels = [f"view{i}" for i in range(100)]
        ids = {region_id_for(l) for l in labels}
        assert len(ids) == 100

    def test_non_negative_31_bit(self):
        for label in ("a", "grid", "x" * 200):
            rid = region_id_for(label)
            assert 0 <= rid < 2**31


class TestStdFileBackend:
    def make(self):
        cluster = Cluster(ClusterSpec(n_nodes=1))
        world = World(cluster, 1)
        h = world.comm_world_handle(0)
        return cluster, world, StdFileBackend(cluster, h, prefix="t")

    def test_checkpoint_restore_roundtrip(self):
        cluster, world, backend = self.make()
        rt = KokkosRuntime()
        v = rt.view("x", data=np.arange(4.0))

        def proc():
            backend.register_views([v])
            yield from backend.checkpoint(0)
            v.fill(0.0)
            yield from backend.restore(0, [v])

        cluster.engine.process(proc())
        cluster.engine.run()
        assert np.array_equal(v.data, np.arange(4.0))

    def test_restore_missing_version_raises(self):
        cluster, world, backend = self.make()
        rt = KokkosRuntime()
        v = rt.view("x", shape=(2,))
        caught = []

        def proc():
            try:
                yield from backend.restore(9, [v])
            except ReproError:
                caught.append(True)

        cluster.engine.process(proc())
        cluster.engine.run()
        assert caught == [True]

    def test_synchronous_write_blocks_caller(self):
        # unlike VeloC, StdFile pays the whole PFS write in the call
        cluster, world, backend = self.make()
        rt = KokkosRuntime()
        v = rt.view("x", shape=(2,), modeled_nbytes=1e9)

        def proc():
            backend.register_views([v])
            yield from backend.checkpoint(0)

        cluster.engine.process(proc())
        cluster.engine.run()
        # 1 GB through the default 4x2GiB PFS: >= 0.1s of wall
        assert cluster.engine.now > 0.1

    def test_local_versions_scoped_by_rank_and_prefix(self):
        cluster, world, backend = self.make()
        rt = KokkosRuntime()
        v = rt.view("x", shape=(2,))

        def proc():
            backend.register_views([v])
            yield from backend.checkpoint(0)
            yield from backend.checkpoint(3)

        cluster.engine.process(proc())
        cluster.engine.run()
        assert backend.local_versions() == {0, 3}
