"""Context behaviour over each backend, without process failures."""

import numpy as np
import pytest

from repro.core import KRConfig, every_nth, make_context
from repro.fenix import FenixSystem, IMRStore
from repro.kokkos import KokkosRuntime
from repro.mpi import World
from repro.util.errors import ConfigError
from repro.veloc import VeloCService
from tests.fenix.conftest import fenix_cluster


def run_kr(n_ranks, body, backend="veloc", filter=None, scope="all", n_spares=0,
           **config_kwargs):
    """Run body(kr_ctx, handle, runtime) on each active rank under Fenix."""
    cluster = fenix_cluster(n_ranks)
    world = World(cluster, n_ranks)
    system = FenixSystem(world, n_spares=n_spares)
    service = VeloCService(cluster)
    imr = IMRStore(world)
    config = KRConfig(
        backend=backend,
        filter=filter if filter is not None else every_nth(1, offset=-1),
        recovery_scope=scope,
        **config_kwargs,
    )
    results = {}

    def main(role, h):
        kr = make_context(h, config, cluster, veloc_service=service, imr_store=imr)
        kr.set_role(role)
        res = yield from body(kr, h, KokkosRuntime())
        return res

    def wrapped(rank):
        ctx = world.context(rank)
        res = yield from system.run(ctx, main)
        results[rank] = res

    for r in range(n_ranks):
        world.spawn(r, wrapped(r))
    cluster.engine.run()
    world.raise_job_errors()
    return results, cluster


BACKENDS = ["veloc", "stdfile", "fenix_imr"]


class TestCheckpointExecute:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_region_executes_and_checkpoints(self, backend):
        def body(kr, h, rt):
            v = rt.view("state", shape=(4,))
            executed = []

            def region():
                v.fill(7.0)
                executed.append(True)

            ran = yield from kr.checkpoint("loop", 0, region)
            assert ran is True
            assert executed == [True]
            return (kr.checkpoints_taken, sorted(kr.backend.local_versions()))

        results, _ = run_kr(2, body, backend=backend)
        for taken, versions in results.values():
            assert taken == 1
            assert versions == [0]

    def test_generator_region_drives_mpi(self):
        def body(kr, h, rt):
            v = rt.view("state", shape=(2,))

            def region():
                total = yield from h.allreduce(1)
                v.fill(float(total))

            yield from kr.checkpoint("loop", 0, region)
            return float(v[0])

        results, _ = run_kr(3, body)
        assert all(value == 3.0 for value in results.values())

    def test_filter_controls_when(self):
        def body(kr, h, rt):
            v = rt.view("state", shape=(2,))
            for i in range(10):
                yield from kr.checkpoint("loop", i, lambda: v.fill(i))
            # old scratch versions are GC'd; wait for the async PFS
            # flushes so every taken checkpoint is visible
            yield from kr.backend.client.wait_flushes()
            return sorted(kr.backend.local_versions())

        results, _ = run_kr(1, body, filter=every_nth(4))
        assert results[0] == [4, 8]

    def test_census_recorded(self):
        def body(kr, h, rt):
            main_v = rt.view("main", shape=(8,))
            swap = rt.view("main_swap", shape=(8,))
            rt.declare_alias("main_swap", "main")
            dup = main_v.subview(slice(None), label="dup")

            def region():
                return (main_v, swap, dup)

            yield from kr.checkpoint("loop", 0, region)
            c = kr.last_census
            return (
                [v.label for v in c.checkpointed],
                [v.label for v in c.aliases],
                [v.label for v in c.skipped],
            )

        results, _ = run_kr(1, body)
        ckpt, alias, skipped = results[0]
        # exactly one of the two same-buffer views is saved (closure
        # discovery order is not semantically meaningful), the other is
        # skipped; the declared alias is always excluded
        assert len(ckpt) == 1 and len(skipped) == 1
        assert set(ckpt) | set(skipped) == {"main", "dup"}
        assert alias == ["main_swap"]


class TestRecovery:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_latest_version_and_restore(self, backend):
        def body(kr, h, rt):
            v = rt.view("state", shape=(4,))
            # phase 1: run three iterations, checkpointing each
            for i in range(3):
                yield from kr.checkpoint("loop", i, lambda i=i: v.fill(float(i)))
            # simulate a fresh context needing recovery
            kr._latest_cache = None
            latest = yield from kr.latest_version()
            assert latest == 2
            v.fill(-1.0)
            ran = yield from kr.checkpoint("loop", latest, lambda: v.fill(99.0))
            return (ran, float(v[0]), kr.recoveries_done)

        results, _ = run_kr(2, body, backend=backend)
        for ran, value, recoveries in results.values():
            assert ran is False  # the region was recovered, not executed
            assert value == 2.0
            assert recoveries == 1

    def test_latest_version_empty(self):
        def body(kr, h, rt):
            latest = yield from kr.latest_version()
            return latest

        results, _ = run_kr(2, body)
        assert all(v == -1 for v in results.values())

    def test_metadata_cache_until_reset(self):
        def body(kr, h, rt):
            v = rt.view("state", shape=(2,))
            yield from kr.checkpoint("loop", 0, lambda: v.fill(1.0))
            first = yield from kr.latest_version()
            yield from kr.checkpoint("loop", 1, lambda: v.fill(2.0))
            cached = yield from kr.latest_version()  # still cached
            kr.reset(h)
            fresh = yield from kr.latest_version()
            return (first, cached, fresh)

        results, _ = run_kr(1, body)
        first, cached, fresh = results[0]
        assert first == 0
        assert cached == 0  # cache hides the new checkpoint
        assert fresh == 1  # reset cleared and re-fetched

    def test_partial_rollback_scope(self):
        # survivors keep their data; only RECOVERED ranks restore.
        from repro.fenix import Role

        def body(kr, h, rt):
            v = rt.view("state", shape=(2,))
            yield from kr.checkpoint("loop", 0, lambda: v.fill(10.0))
            # advance past the checkpoint
            v.fill(42.0)
            kr._latest_cache = None
            latest = yield from kr.latest_version()
            # everyone re-runs iteration `latest`; survivors skip restore
            yield from kr.checkpoint("loop", latest, lambda: None)
            return float(v[0])

        results, _ = run_kr(2, body, scope="recovered_only")
        # roles here are INITIAL (not RECOVERED), so data is kept
        assert all(v == 42.0 for v in results.values())

    def test_single_mode_reduction_finds_common_version(self):
        # rank 0 has versions {0,1}; rank 1 only {0}: agreement says 0.
        def body(kr, h, rt):
            v = rt.view("state", shape=(2,))
            yield from kr.checkpoint("loop", 0, lambda: v.fill(0.0))
            if h.rank == 0:
                yield from kr.checkpoint("loop", 1, lambda: v.fill(1.0))
            kr._latest_cache = None
            latest = yield from kr.latest_version()
            return latest

        results, _ = run_kr(2, body)
        assert all(v == 0 for v in results.values())


class TestMakeContext:
    def test_veloc_requires_service(self):
        cluster = fenix_cluster(1)
        world = World(cluster, 1)
        h = world.comm_world_handle(0)
        with pytest.raises(ConfigError):
            make_context(h, KRConfig(backend="veloc"), cluster)

    def test_imr_requires_store(self):
        cluster = fenix_cluster(1)
        world = World(cluster, 1)
        h = world.comm_world_handle(0)
        with pytest.raises(ConfigError):
            make_context(h, KRConfig(backend="fenix_imr"), cluster)

    def test_bad_backend_rejected(self):
        with pytest.raises(ConfigError):
            KRConfig(backend="nope")

    def test_bad_scope_rejected(self):
        with pytest.raises(ConfigError):
            KRConfig(recovery_scope="sometimes")
