"""Tests demonstrating the integration problems the paper fixes.

Section V: "The typical [VeloC] initialization call takes an MPI
Communicator as input and does not include the functionality to replace
this communicator" and "The VeloC backend in [Kokkos Resilience] does not
allow initializing VeloC in single mode, and contains state-based
information which cannot be reset after a process failure."

These tests show the failure modes the paper's modifications remove:
stale-communicator errors after repair, and the local-vs-global checkpoint
disagreement that the metadata reset + reduction fixes.
"""

import pytest

from repro.core import KRConfig, every_nth, make_context
from repro.fenix import FenixSystem, Role
from repro.kokkos import KokkosRuntime
from repro.mpi import CommHandle, RevokedError, World
from repro.sim import IterationFailure
from repro.veloc import VeloCClient, VeloCConfig, VeloCService
from tests.fenix.conftest import fenix_cluster


class TestStaleCommunicator:
    def test_collective_query_on_stale_comm_raises_after_repair(self):
        """Stock behaviour: VeloC keeps the communicator it was
        initialized with; after a Fenix repair that communicator is
        revoked, so the collective best-version query errors instead of
        completing -- exactly why the paper needs single mode + reset."""
        plan = IterationFailure([(1, 2)])
        cluster = fenix_cluster(4)
        world = World(cluster, 4)
        system = FenixSystem(world, n_spares=1)
        service = VeloCService(cluster)
        observed = []

        def main(role, h):
            ctx = h.ctx
            persistent = ctx.user.setdefault("app", {})
            if "client" not in persistent or role is Role.RECOVERED:
                # stock init: collective mode, bound to the CURRENT comm.
                # (A handler-free handle is used so the error surfaces as
                # RevokedError here instead of re-entering Fenix recovery
                # forever -- the livelock stock VeloC+Fenix would hit.)
                rt = KokkosRuntime()
                v = rt.view("x", shape=(4,))
                client = VeloCClient(
                    ctx, cluster, service,
                    VeloCConfig(mode="collective"),
                    comm=CommHandle(h.comm, ctx),
                )
                client.mem_protect(0, v)
                persistent["client"] = client
            client = persistent["client"]
            if role is Role.SURVIVOR:
                # deliberately NOT calling client.set_comm(h): stock VeloC
                # has no way to replace its communicator.
                try:
                    # drive the raw (unhandled) collective query on the
                    # stale communicator object
                    yield from client._restart_test_collective()
                except RevokedError:
                    observed.append(ctx.rank)
                return "survivor-done"
            if role is Role.RECOVERED:
                return "recovered-done"  # keep the exit collective-free
            for i in range(4):
                plan.check(ctx.rank, i)
                yield from client.checkpoint(i)
                yield from h.allreduce(1)
            return "done"

        def wrapped(rank):
            yield from system.run(world.context(rank), main)

        for r in range(4):
            world.spawn(r, wrapped(r), failure_plan=plan)
        cluster.engine.run()
        # every survivor hit the stale-communicator error
        assert sorted(observed) == [0, 2]

    def test_set_comm_fixes_the_stale_query(self):
        """With the paper's modification (reset pushes the repaired
        communicator down), the same query completes."""
        plan = IterationFailure([(1, 2)])
        cluster = fenix_cluster(4)
        world = World(cluster, 4)
        system = FenixSystem(world, n_spares=1)
        service = VeloCService(cluster)
        answers = []

        def main(role, h):
            ctx = h.ctx
            persistent = ctx.user.setdefault("app", {})
            if "client" not in persistent or role is Role.RECOVERED:
                rt = KokkosRuntime()
                v = rt.view("x", shape=(4,))
                client = VeloCClient(
                    ctx, cluster, service,
                    VeloCConfig(mode="single"), comm=h,
                )
                client.mem_protect(0, v)
                persistent["client"] = client
            client = persistent["client"]
            if role is not Role.INITIAL:
                client.set_comm(h)  # the paper's added hook
                local = client.local_versions()
                best = max(local) if local else -1
                from repro.mpi import MIN

                agreed = yield from h.allreduce(best, op=MIN)
                answers.append((ctx.rank, int(agreed)))
                return "recovered-path"
            for i in range(4):
                plan.check(ctx.rank, i)
                yield from client.checkpoint(i)
                yield from h.allreduce(1)
            return "done"

        def wrapped(rank):
            yield from system.run(world.context(rank), main)

        for r in range(4):
            world.spawn(r, wrapped(r), failure_plan=plan)
        cluster.engine.run()
        world.raise_job_errors()
        # all three active ranks agreed on a version; the replacement
        # (holding nothing) drags agreement to -1, exposing why the full
        # system must consult persistent tiers -- covered elsewhere.
        assert len(answers) == 3
        assert len({v for _r, v in answers}) == 1


class TestMetadataCacheMotivation:
    def test_locally_finished_checkpoint_not_globally_visible(self):
        """"a checkpoint finished locally may not have finished globally":
        immediately after rank 0 checkpoints, its local latest is ahead of
        the globally agreed version."""
        cluster = fenix_cluster(2)
        world = World(cluster, 2)
        system = FenixSystem(world, n_spares=0)
        service = VeloCService(cluster)
        config = KRConfig(backend="veloc", filter=every_nth(1, offset=-1))
        out = {}

        def main(role, h):
            kr = make_context(h, config, cluster, veloc_service=service)
            rt = KokkosRuntime()
            v = rt.view("x", shape=(2,))
            yield from kr.checkpoint("r", 0, lambda: v.fill(1.0))
            if h.rank == 0:
                yield from kr.checkpoint("r", 1, lambda: v.fill(2.0))
            local = kr.backend.local_versions()
            agreed = yield from kr.backend.latest_version()
            out[h.rank] = (max(local), agreed)
            return "ok"

        def wrapped(rank):
            yield from system.run(world.context(rank), main)

        for r in range(2):
            world.spawn(r, wrapped(r))
        cluster.engine.run()
        world.raise_job_errors()
        assert out[0] == (1, 0)  # locally ahead, globally held back
        assert out[1] == (0, 0)
