"""Failure-point sweep: recovery must be exact wherever the failure lands.

The paper tests one failure point (95% between two checkpoints); these
sweeps kill a rank at *every* phase of the checkpoint cycle -- right
before, right after, and on checkpoint iterations, during recovery
windows, at the first and last iteration -- and require bit-identical
final state every time.  This is the strongest correctness statement the
reproduction makes.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import HeatdisConfig, make_heatdis_main
from repro.sim import IterationFailure
from tests.apps.conftest import run_app

CFG = HeatdisConfig(local_rows=6, cols=12, modeled_bytes_per_rank=16e6,
                    n_iters=24)
CKPT = 5
N_RANKS = 3


def run_with(plan, backend="veloc"):
    def factory(make_kr, results, _plan):
        return make_heatdis_main(CFG, make_kr, failure_plan=plan,
                                 results=results)

    return run_app(factory, N_RANKS, n_spares=2, plan=plan, backend=backend,
                   ckpt_interval=CKPT)


@pytest.fixture(scope="module")
def clean_grids():
    results, _ = run_with(None)
    return {r: results[r]["grid"] for r in range(N_RANKS)}


class TestKillEveryIteration:
    @pytest.mark.parametrize("kill_iter", list(range(0, 24, 2)))
    def test_single_failure_bitwise_exact(self, kill_iter, clean_grids):
        plan = IterationFailure([(1, kill_iter)])
        results, world = run_with(plan)
        assert world.dead == {1}
        for r in range(N_RANKS):
            np.testing.assert_array_equal(
                clean_grids[r], results[r]["grid"],
                err_msg=f"diverged after kill at iteration {kill_iter}",
            )

    @pytest.mark.parametrize("kill_iter", [0, 5, 11, 23])
    def test_imr_backend_sweep(self, kill_iter):
        clean, _ = run_with(None, backend="fenix_imr")
        plan = IterationFailure([(0, kill_iter)])
        failed, _ = run_with(plan, backend="fenix_imr")
        for r in range(N_RANKS):
            np.testing.assert_array_equal(
                clean[r]["grid"], failed[r]["grid"]
            )


class TestRandomizedFailures:
    @settings(max_examples=10, deadline=None)
    @given(
        victim=st.integers(min_value=0, max_value=N_RANKS - 1),
        kill_iter=st.integers(min_value=0, max_value=23),
    )
    def test_any_single_failure_recovers(self, victim, kill_iter,
                                         clean_grids):
        plan = IterationFailure([(victim, kill_iter)])
        results, _ = run_with(plan)
        for r in range(N_RANKS):
            np.testing.assert_array_equal(clean_grids[r], results[r]["grid"])

    @settings(max_examples=6, deadline=None)
    @given(
        first=st.integers(min_value=0, max_value=10),
        gap=st.integers(min_value=2, max_value=10),
    )
    def test_two_failures_recover(self, first, gap, clean_grids):
        plan = IterationFailure([(0, first), (2, first + gap)])
        results, world = run_with(plan)
        assert world.dead == {0, 2}
        for r in range(N_RANKS):
            np.testing.assert_array_equal(clean_grids[r], results[r]["grid"])
