"""Checkpoint filter tests."""

import pytest

from repro.core import always, every_nth, never
from repro.util.errors import ConfigError


def test_every_nth_basic():
    f = every_nth(5)
    assert [i for i in range(0, 21) if f(i)] == [5, 10, 15, 20]


def test_every_nth_offset():
    f = every_nth(4, offset=2)
    assert [i for i in range(0, 15) if f(i)] == [6, 10, 14]


def test_every_nth_skips_start():
    assert not every_nth(3)(0)


def test_every_nth_validates():
    with pytest.raises(ConfigError):
        every_nth(0)


def test_always_never():
    assert always(0) and always(7)
    assert not never(0) and not never(7)
