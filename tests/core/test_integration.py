"""Full-stack integration: Fenix + Kokkos Resilience + VeloC/IMR.

These tests exercise the paper's complete protocol (Figure 3/4): a rank
dies mid-run, Fenix repairs the communicator in place, survivors reset
their context, the replacement recovers data, and the final numerical
state on every rank equals the failure-free run.
"""

import numpy as np
import pytest

from repro.core import KRConfig, every_nth, make_context
from repro.fenix import FenixSystem, IMRStore, Role
from repro.kokkos import KokkosRuntime
from repro.mpi import SUM, World
from repro.sim import IterationFailure
from repro.veloc import VeloCService
from tests.fenix.conftest import fenix_cluster

N_ITERS = 12
CKPT_EVERY = 3


def resilient_counter_app(world, cluster, system, service, imr, config, plan):
    """A tiny iterative app: state[i+1] = state[i] + allreduce(ranks).

    Deterministic, so the post-recovery state must exactly match the
    failure-free result.  Returns dict rank -> final state value.
    """
    results = {}

    def main(role, h):
        ctx = h.ctx
        # persistent per-process state (the "heap" surviving long-jumps)
        state = ctx.user.get("app_state")
        if state is None or role is Role.RECOVERED:
            rt = KokkosRuntime()
            state = {
                "rt": rt,
                "view": rt.view("counter", shape=(2,)),
                "kr": None,
            }
            ctx.user["app_state"] = state
        view = state["view"]
        if state["kr"] is None:
            kr = make_context(
                h, config, cluster, veloc_service=service, imr_store=imr
            )
            state["kr"] = kr
        else:
            kr = state["kr"]
        if role is Role.SURVIVOR:
            kr.reset(h, role)
        else:
            kr.set_role(role)
        latest = yield from kr.latest_version()
        if latest < 0:
            # Nothing restorable anywhere (e.g. the flush had not finished
            # when the failure hit): every rank re-runs data init -- the
            # Figure-2 "communicative init" branch.
            view.fill(0.0)
        start = max(0, latest)  # the `latest` region recovers, then computes

        for i in range(start, N_ITERS):
            def region(i=i):
                contribution = yield from h.allreduce(h.rank + 1, op=SUM)
                view[0] += float(contribution)
                view[1] = float(i)

            plan.check(ctx.rank, i)
            yield from kr.checkpoint("loop", i, region)
        return (h.rank, float(view[0]), float(view[1]))

    def wrapped(rank):
        res = yield from system.run(world.context(rank), main)
        if res is not None:
            results[res[0]] = res

    for r in range(world.n_ranks):
        world.spawn(r, wrapped(r), failure_plan=plan)
    cluster.engine.run()
    world.raise_job_errors()
    return results


def run_scenario(backend="veloc", n_ranks=4, n_spares=1, kills=(), scope="all"):
    plan = IterationFailure(list(kills))
    cluster = fenix_cluster(n_ranks)
    world = World(cluster, n_ranks)
    system = FenixSystem(world, n_spares=n_spares)
    service = VeloCService(cluster)
    imr = IMRStore(world)
    config = KRConfig(
        backend=backend, filter=every_nth(CKPT_EVERY), recovery_scope=scope
    )
    results = resilient_counter_app(
        world, cluster, system, service, imr, config, plan
    )
    return results, world, system


def expected_final(n_active):
    """Failure-free result: every iteration adds sum(1..n_active)."""
    per_iter = n_active * (n_active + 1) // 2
    return float(N_ITERS * per_iter)


class TestFailureFree:
    @pytest.mark.parametrize("backend", ["veloc", "stdfile", "fenix_imr"])
    def test_matches_expected(self, backend):
        results, world, system = run_scenario(backend=backend, kills=())
        n_active = 3
        for rank in range(n_active):
            value, last_iter = results[rank][1], results[rank][2]
            assert value == expected_final(n_active)
            assert last_iter == N_ITERS - 1


class TestFailureRecovery:
    @pytest.mark.parametrize("backend", ["veloc", "fenix_imr"])
    def test_single_failure_exact_state(self, backend):
        # kill comm rank 1 at iteration 8 (95%-ish between ckpts 6 and 9)
        results, world, system = run_scenario(backend=backend, kills=[(1, 8)])
        n_active = 3
        assert world.dead == {1}
        assert system.generation == 1
        for rank in range(n_active):
            assert results[rank][1] == expected_final(n_active), (
                f"rank {rank} state diverged after recovery"
            )

    def test_failure_before_first_checkpoint_restarts_clean(self):
        # death at iteration 1: no checkpoint exists yet; everyone
        # restarts from iteration 0 (latest_version == -1).
        results, world, system = run_scenario(backend="veloc", kills=[(2, 1)])
        n_active = 3
        for rank in range(n_active):
            assert results[rank][1] == expected_final(n_active)

    def test_two_failures_two_spares(self):
        results, world, system = run_scenario(
            n_ranks=6, n_spares=2, kills=[(0, 4), (2, 10)]
        )
        n_active = 4
        assert world.dead == {0, 2}
        assert system.generation == 2
        for rank in range(n_active):
            assert results[rank][1] == expected_final(n_active)

    def test_checkpoint_metadata_refetched_after_reset(self):
        # Failure at iteration 8 with checkpoints at 3 and 6: recovery
        # must agree on version 6 (flushed) -- all ranks resume there.
        results, world, system = run_scenario(backend="veloc", kills=[(1, 8)])
        # state correctness (asserted above) implies the agreed version
        # was consistent; also check the recovery actually used v6:
        trace_like = [d for d in system.detections]
        assert trace_like  # failure was detected through the handler


class TestStateIsolation:
    def test_survivor_data_used_not_restored_in_partial_scope(self):
        # with recovered_only scope, survivors keep in-memory data; since
        # the app is deterministic and survivors are AT the failure
        # iteration, their state is ahead; this app tolerates it only if
        # recovery aligns iterations -- here we just assert the run
        # completes and the recovered rank caught up.
        results, world, system = run_scenario(
            backend="veloc", kills=[(1, 8)], scope="recovered_only"
        )
        assert 1 in results  # slot 1 (replacement) finished
        assert results[1][2] == N_ITERS - 1
