"""Memoized view discovery and census robustness.

The KR context caches the (discover, classify) census per checkpoint
region code object, invalidated by the process-wide registry generation
counter -- steady-state iterations skip the closure walk entirely.  The
census must also classify correctly for views whose parent array has
gone out of scope (buffer identity is anchored on the numpy base chain).
"""

import gc

import numpy as np

from repro.kokkos import View
from repro.kokkos.registry import registry_generation
from tests.core.test_context import run_kr


class TestDiscoveryMemoization:
    def test_steady_state_hits_cache(self):
        def body(kr, h, rt):
            v = rt.view("state", shape=(8,))

            def region():
                v.fill(1.0)

            for i in range(5):
                yield from kr.checkpoint("loop", i, region)
            return kr.discoveries_memoized

        results, _ = run_kr(1, body)
        # first call discovers; the next four are served from the cache
        assert results[0] == 4

    def test_per_iteration_closures_share_the_cache(self):
        # heatdis-style: a fresh closure per iteration compiles once, so
        # every iteration keys on the same code object
        def body(kr, h, rt):
            v = rt.view("state", shape=(8,))
            for i in range(4):
                yield from kr.checkpoint("loop", i, lambda: v.fill(i))
            return kr.discoveries_memoized

        results, _ = run_kr(1, body)
        assert results[0] == 3

    def test_registry_change_invalidates(self):
        def body(kr, h, rt):
            v = rt.view("state", shape=(8,))

            def region():
                v.fill(1.0)

            yield from kr.checkpoint("loop", 0, region)
            yield from kr.checkpoint("loop", 1, region)
            rt.view("late", shape=(4,))  # registry generation bumps
            yield from kr.checkpoint("loop", 2, region)
            return (kr.discoveries_memoized, len(kr.last_census.checkpointed))

        results, _ = run_kr(1, body)
        memoized, checkpointed = results[0]
        assert memoized == 1  # only iteration 1 hit the cache
        assert checkpointed == 1  # "late" is not captured by region

    def test_new_view_in_region_is_discovered(self):
        # the invalidation above is what makes this correct: a view
        # registered after the first census must still be checkpointed
        def body(kr, h, rt):
            views = [rt.view("a", shape=(4,))]

            def region():
                for v in views:
                    v.fill(1.0)

            yield from kr.checkpoint("loop", 0, region)
            first = len(kr.last_census.checkpointed)
            views.append(rt.view("b", shape=(4,)))
            yield from kr.checkpoint("loop", 1, region)
            return (first, len(kr.last_census.checkpointed))

        results, _ = run_kr(1, body)
        assert results[0] == (1, 2)

    def test_subscribe_invalidates(self):
        class Holder:
            pass

        def body(kr, h, rt):
            v = rt.view("state", shape=(8,))

            def region():
                v.fill(1.0)

            yield from kr.checkpoint("loop", 0, region)
            holder = Holder()
            holder.extra = rt.view("extra", shape=(4,))
            kr.subscribe(holder)
            yield from kr.checkpoint("loop", 1, region)
            return len(kr.last_census.checkpointed)

        results, _ = run_kr(1, body)
        assert results[0] == 2

    def test_memoization_can_be_disabled(self):
        def body(kr, h, rt):
            v = rt.view("state", shape=(8,))

            def region():
                v.fill(1.0)

            for i in range(3):
                yield from kr.checkpoint("loop", i, region)
            return kr.discoveries_memoized

        results, _ = run_kr(1, body, memoize_discovery=False)
        assert results[0] == 0

    def test_generation_counter_bumps_on_registry_ops(self):
        from repro.kokkos.registry import ViewRegistry

        reg = ViewRegistry()
        g0 = registry_generation()
        v = View("x", shape=(2,), registry=reg)
        assert registry_generation() > g0
        g1 = registry_generation()
        reg.unregister(v)
        assert registry_generation() > g1


class TestCensusBufferLiveness:
    def test_duplicate_detection_survives_parent_scope_exit(self):
        # regression: two views over one buffer whose creating scope (and
        # the caller's reference to the parent array) is gone must still
        # classify as one checkpointed + one skipped, not two checkpointed
        def body(kr, h, rt):
            def make_pair():
                parent = np.arange(64.0)
                a = rt.view("a", data=parent[:48])
                b = rt.view("b", data=parent[16:])
                return a, b

            a, b = make_pair()
            gc.collect()  # parent name is out of scope; base chain holds

            def region():
                a.fill(1.0)
                b.fill(2.0)

            yield from kr.checkpoint("loop", 0, region)
            c = kr.last_census
            return (len(c.checkpointed), len(c.skipped), len(c.aliases))

        results, _ = run_kr(1, body)
        assert results[0] == (1, 1, 0)

    def test_distinct_buffers_not_conflated_after_gc(self):
        # the flip side: buffer ids of *dead* arrays must never be reused
        # in a way that makes two live independent views look shared
        def body(kr, h, rt):
            views = []
            for i in range(8):
                scratch = np.full(32, float(i))
                views.append(rt.view(f"v{i}", data=scratch[:16]))
                del scratch
                gc.collect()

            def region():
                for v in views:
                    v.fill(1.0)

            yield from kr.checkpoint("loop", 0, region)
            c = kr.last_census
            return (len(c.checkpointed), len(c.skipped))

        results, _ = run_kr(1, body)
        assert results[0] == (8, 0)
