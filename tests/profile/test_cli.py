"""python -m repro.profile: all four subcommands, drop/budget exits."""

import json

import pytest

from repro.profile.__main__ import main

RUN = ["--strategy", "fenix_kr_veloc", "--ranks", "4",
       "--kill-rank", "2", "--iters", "30", "--interval", "10"]


class TestReport:
    def test_report_writes_ledger_json(self, tmp_path, capsys):
        out = tmp_path / "ledger.json"
        assert main(["report", *RUN, "--json", str(out)]) == 0
        text = capsys.readouterr().out
        assert "makespan" in text and "mean" in text
        doc = json.loads(out.read_text())
        assert doc["schema"] == 1
        assert doc["dropped"] == 0
        assert sum(doc["mean"].values()) == pytest.approx(
            doc["mean_makespan"], rel=1e-9
        )

    def test_report_fails_on_drops(self, capsys):
        args = ["report", *RUN, "--max-records", "40"]
        assert main(args) == 1
        assert "dropped" in capsys.readouterr().err
        assert main([*args, "--allow-drops"]) == 0

    def test_unknown_strategy_rejected(self, capsys):
        assert main(["report", "--strategy", "nope"]) == 2


class TestCriticalPath:
    def test_critical_path_prints_chain(self, tmp_path, capsys):
        out = tmp_path / "cp.json"
        assert main(["critical-path", *RUN, "--json", str(out)]) == 0
        assert "critical path" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert doc["kill_rank"] == 2
        assert doc["total"] > 0

    def test_no_failure_exits_nonzero(self, capsys):
        args = ["critical-path", "--strategy", "fenix_kr_veloc",
                "--ranks", "4", "--iters", "20"]
        assert main(args) == 1
        assert "no critical path" in capsys.readouterr().err


class TestFlamegraph:
    def test_flamegraph_writes_folded(self, tmp_path, capsys):
        out = tmp_path / "profile.folded"
        assert main(["flamegraph", *RUN, "--out", str(out)]) == 0
        lines = out.read_text().splitlines()
        assert lines
        assert all(line.rsplit(" ", 1)[1].isdigit() for line in lines)


class TestDiff:
    def _ledger(self, path, mean):
        base = {c: 0.0 for c in ("compute", "app_mpi_wait", "idle")}
        base.update(mean)
        path.write_text(json.dumps({"schema": 1, "mean": base,
                                    "mean_makespan": sum(base.values())}))
        return str(path)

    def test_within_budget(self, tmp_path, capsys):
        a = self._ledger(tmp_path / "a.json", {"compute": 1.00})
        b = self._ledger(tmp_path / "b.json", {"compute": 1.02})
        assert main(["diff", a, b, "--budget", "0.05"]) == 0
        assert "within" in capsys.readouterr().out

    def test_over_budget_fails(self, tmp_path, capsys):
        a = self._ledger(tmp_path / "a.json", {"compute": 1.00})
        b = self._ledger(tmp_path / "b.json", {"compute": 1.10})
        assert main(["diff", a, b, "--budget", "0.05"]) == 1
        captured = capsys.readouterr()
        assert "OVER-BUDGET" in captured.out

    def test_small_categories_ignored(self, tmp_path):
        a = self._ledger(tmp_path / "a.json", {"idle": 1e-6})
        b = self._ledger(tmp_path / "b.json", {"idle": 5e-4})
        assert main(["diff", a, b, "--budget", "0.05"]) == 0

    def test_bad_file_exits_two(self, tmp_path, capsys):
        missing = str(tmp_path / "missing.json")
        good = self._ledger(tmp_path / "a.json", {"compute": 1.0})
        assert main(["diff", missing, good]) == 2
