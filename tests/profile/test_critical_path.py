"""Recovery critical path: kill -> re-entry chain with layer attribution."""

import pytest

from repro.profile import extract_critical_path, format_critical_path

from tests.profile.conftest import KILL_RANK, RANKS


class TestFig5CriticalPath:
    def test_chain_shape(self, fig5_run):
        tel, _ = fig5_run
        cp = extract_critical_path(tel)
        assert cp.kill_rank == KILL_RANK
        assert cp.reentry_time > cp.kill_time
        assert cp.total > 0.0
        # edges tile [kill, re-entry] with no gaps or overlaps
        assert cp.edges[0].start == pytest.approx(cp.kill_time)
        assert cp.edges[-1].end == pytest.approx(cp.reentry_time)
        for prev, nxt in zip(cp.edges, cp.edges[1:]):
            assert nxt.start == pytest.approx(prev.end)
        assert sum(e.duration for e in cp.edges) == pytest.approx(cp.total)

    def test_per_layer_attribution(self, fig5_run):
        tel, _ = fig5_run
        cp = extract_critical_path(tel)
        layers = cp.by_layer()
        assert set(layers) <= {"ulfm", "fenix", "kr", "veloc",
                               "recompute", "app", "process"}
        assert sum(layers.values()) == pytest.approx(cp.total)
        # the Fenix path: no process teardown/relaunch edges
        assert "process" not in layers
        stage_names = [e.name for e in cp.edges]
        assert stage_names.index("repair") < stage_names.index(
            "kr reset/restore"
        ) < stage_names.index("recompute")

    def test_critical_rank_has_latest_reentry(self, fig5_run):
        tel, _ = fig5_run
        cp = extract_critical_path(tel)
        assert cp.critical_rank in cp.chains
        assert cp.chains[cp.critical_rank] == max(cp.chains.values())
        assert cp.reentry_time == pytest.approx(
            cp.chains[cp.critical_rank]
        )
        # the dead process itself never re-enters
        assert cp.kill_rank not in cp.chains

    def test_explicit_rank_selection(self, fig5_run):
        tel, _ = fig5_run
        cp = extract_critical_path(tel, rank=KILL_RANK, occurrence=0)
        assert cp.kill_rank == KILL_RANK
        with pytest.raises(ValueError):
            extract_critical_path(tel, rank=KILL_RANK, occurrence=5)
        with pytest.raises(ValueError):
            extract_critical_path(tel, rank=0)  # rank 0 never died

    def test_format_renders(self, fig5_run):
        tel, _ = fig5_run
        text = format_critical_path(extract_critical_path(tel))
        assert "critical path" in text
        assert "per-layer totals" in text
        assert "<- critical" in text

    def test_to_dict_roundtrip(self, fig5_run):
        tel, _ = fig5_run
        doc = extract_critical_path(tel).to_dict()
        assert doc["kill_rank"] == KILL_RANK
        assert doc["total"] == pytest.approx(
            sum(e["duration"] for e in doc["edges"])
        )
        assert set(doc["chains"])  # non-empty


class TestCleanRunCriticalPath:
    def test_no_failure_no_path(self, clean_run):
        tel, _ = clean_run
        with pytest.raises(ValueError):
            extract_critical_path(tel)


class TestShrinkCriticalPath:
    """PROTOCOLS.md section-4: spare exhaustion resolved by shrinking."""

    def test_shrink_recovery_chain(self, shrink_run):
        tel, system, results = shrink_run
        assert results, "shrunk job did not finish"
        cp = extract_critical_path(tel)
        assert cp.kill_rank == 1
        # no spare: the survivors (world ranks 0, 2) carry the chain
        assert set(cp.chains) <= {0, 2}
        assert cp.critical_rank in (0, 2)
        assert cp.reentry_time > cp.kill_time
        layers = cp.by_layer()
        assert sum(layers.values()) == pytest.approx(cp.total)
        # the repair happened via shrink, not relaunch
        assert "process" not in layers
        shrinks = tel.tracer.find(name="fenix.shrink")
        assert shrinks, "shrink instant missing from the span stream"

    def test_survivors_recompute_on_chain(self, shrink_run):
        tel, _, _ = shrink_run
        cp = extract_critical_path(tel)
        recompute_edges = [e for e in cp.edges if e.layer == "recompute"]
        assert len(recompute_edges) == 1
        assert recompute_edges[0].duration > 0.0
