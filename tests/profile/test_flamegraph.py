"""Folded-stack export: format, self-time, and identity folding."""

import re

from repro.profile import folded_stacks, write_folded
from repro.profile.flamegraph import format_folded
from repro.telemetry import Telemetry

from tests.profile.conftest import RANKS

FOLDED_LINE = re.compile(r"^(\S.*) (\d+)$")


class _Clock:
    def __init__(self):
        self.now = 0.0


def test_folded_format(fig5_run):
    tel, _ = fig5_run
    stacks = folded_stacks(tel)
    assert stacks
    body = format_folded(stacks)
    lines = body.splitlines()
    assert lines == sorted(lines)  # stable ordering for diffs
    for line in lines:
        m = FOLDED_LINE.match(line)
        assert m, f"bad folded line: {line!r}"
        assert int(m.group(2)) > 0
    # multi-frame stacks exist (spans nest under their parents)
    assert any(";" in s and s.count(";") >= 2 for s in stacks)


def test_rank_root_frames(fig5_run):
    tel, _ = fig5_run
    stacks = folded_stacks(tel)
    roots = {s.split(";", 1)[0] for s in stacks}
    for r in range(RANKS):
        assert f"rank{r}" in roots
    # the replacement's recovery (recorded on veloc.rank2 with
    # wrank=RANKS) folds under its own physical rank
    assert any(s.startswith(f"rank{RANKS};") and "veloc.recover" in s
               for s in stacks)


def test_self_time_excludes_children():
    tel = Telemetry(enabled=True)
    clock = _Clock()
    tel.tracer.bind(clock)
    with tel.span("rank0", "outer"):
        clock.now = 2.0
        with tel.span("rank0", "inner"):
            clock.now = 8.0
        clock.now = 10.0
    stacks = folded_stacks(tel)
    assert stacks["rank0;outer"] == 4_000_000  # 10 - (8 - 2) seconds
    assert stacks["rank0;outer;inner"] == 6_000_000


def test_write_folded(tmp_path, fig5_run):
    tel, _ = fig5_run
    out = tmp_path / "profile.folded"
    n = write_folded(str(out), tel)
    text = out.read_text()
    assert n == len(text.splitlines()) > 0
