"""Ledger attribution: conservation, identity, priority, and drops."""

import pytest

from repro.harness.report import (
    HEATDIS_CATEGORIES,
    report_to_dict,
    summarize_categories,
)
from repro.profile import build_ledger, format_ledger
from repro.profile.categories import (
    APP_MPI,
    CATEGORIES,
    COMPUTE,
    FAILURE_DETECTION,
    FLUSH_CONGESTION,
    IDLE,
    KR_RESTORE,
    RECOMPUTE,
    VELOC_RECOVER,
)
from repro.sim.trace import Trace
from repro.telemetry import Telemetry

from tests.profile.conftest import KILL_RANK, RANKS

REL_TOL = 1e-9


class _Clock:
    def __init__(self):
        self.now = 0.0


def synthetic_tel():
    """A telemetry whose tracer is driven by a hand-cranked clock."""
    tel = Telemetry(enabled=True)
    clock = _Clock()
    tel.tracer.bind(clock)
    return tel, clock


def span(tel, clock, source, start, end, name, **fields):
    clock.now = start
    handle = tel.span(source, name, **fields)
    handle.__enter__()
    clock.now = end
    handle.__exit__(None, None, None)
    return handle.record


def assert_conserved(ledger):
    for rank, rl in ledger.ranks.items():
        assert abs(rl.residual) <= REL_TOL * max(1.0, rl.makespan), (
            f"rank {rank}: residual {rl.residual}"
        )


class TestSyntheticLedger:
    def test_priority_recompute_absorbs_nested_compute(self):
        tel, clock = synthetic_tel()
        span(tel, clock, "rank0", 0.0, 10.0, "compute", kind="app_compute")
        rec = span(tel, clock, "rank0", 10.0, 20.0, "recompute")
        # nested compute/mpi inside the recompute window
        inner = span(tel, clock, "rank0", 12.0, 16.0, "compute",
                     kind="app_compute")
        inner.parent = rec.sid
        ledger = build_ledger(tel)
        rl = ledger.ranks[0]
        assert rl.get(RECOMPUTE) == pytest.approx(10.0)
        assert rl.get(COMPUTE) == pytest.approx(10.0)
        assert_conserved(ledger)

    def test_congestion_moved_to_data_layer(self):
        tel, clock = synthetic_tel()
        span(tel, clock, "rank0", 0.0, 10.0, "compute",
             kind="app_compute", congestion=2.0)
        ledger = build_ledger(tel)
        rl = ledger.ranks[0]
        assert rl.get(FLUSH_CONGESTION) == pytest.approx(2.0)
        assert rl.get(COMPUTE) == pytest.approx(8.0)
        assert_conserved(ledger)

    def test_errored_mpi_wait_splits_at_death(self):
        tel, clock = synthetic_tel()
        clock.now = 5.0
        tel.instant("rank1", "rank_killed")
        rec = span(tel, clock, "rank0", 0.0, 8.0, "mpi.recv")
        rec.error = "MPIError"
        ledger = build_ledger(tel)
        rl = ledger.ranks[0]
        assert rl.get(APP_MPI) == pytest.approx(5.0)
        assert rl.get(FAILURE_DETECTION) == pytest.approx(3.0)
        assert_conserved(ledger)

    def test_uncovered_time_is_idle(self):
        tel, clock = synthetic_tel()
        span(tel, clock, "rank0", 0.0, 1.0, "compute", kind="app_compute")
        span(tel, clock, "rank0", 4.0, 5.0, "compute", kind="app_compute")
        ledger = build_ledger(tel)
        rl = ledger.ranks[0]
        assert rl.get(IDLE) == pytest.approx(3.0)
        assert rl.makespan == pytest.approx(5.0)
        assert_conserved(ledger)

    def test_layer_track_uses_wrank(self):
        tel, clock = synthetic_tel()
        span(tel, clock, "rank7", 0.0, 1.0, "compute", kind="app_compute")
        # replacement world rank 7 recovering under veloc identity 2
        span(tel, clock, "veloc.rank2", 1.0, 3.0, "veloc.recover", wrank=7)
        ledger = build_ledger(tel)
        assert 2 not in ledger.ranks
        assert ledger.ranks[7].get(VELOC_RECOVER) == pytest.approx(2.0)

    def test_disabled_telemetry_rejected(self):
        from repro.telemetry.collector import NULL_TELEMETRY

        with pytest.raises(ValueError):
            build_ledger(NULL_TELEMETRY)
        with pytest.raises(ValueError):
            build_ledger(None)

    def test_drops_surfaced_in_ledger_and_report(self):
        tel, clock = synthetic_tel()
        span(tel, clock, "rank0", 0.0, 1.0, "compute", kind="app_compute")
        trace = Trace(enabled=True, max_records=1)
        trace.emit(0.1, "rank0", "a")
        trace.emit(0.2, "rank0", "b")
        ledger = build_ledger(tel, trace=trace)
        assert ledger.dropped == 1
        assert not ledger.complete
        assert ledger.dropped_window == (0.1, 0.1)
        text = format_ledger(ledger)
        assert "WARNING" in text and "dropped" in text
        assert ledger.to_dict()["dropped"] == 1


class TestFailureRunLedger:
    def test_report_carries_profile(self, fig5_run):
        _, report = fig5_run
        assert report.profile is not None
        assert report.profile["schema"] == 1
        assert report.profile["n_ranks"] == RANKS + 1  # spare included

    def test_every_second_attributed(self, fig5_run):
        tel, report = fig5_run
        ledger = build_ledger(tel, wall_time=report.wall_time)
        assert_conserved(ledger)
        # the serialized form conserves too
        for rank, entry in report.profile["ranks"].items():
            total = sum(entry["categories"].values())
            assert total == pytest.approx(entry["makespan"], rel=1e-9), rank
        mean = report.profile["mean"]
        assert sum(mean.values()) == pytest.approx(
            report.profile["mean_makespan"], rel=1e-9
        )
        assert set(mean) == set(CATEGORIES)

    def test_replacement_owns_its_recovery_seconds(self, fig5_run):
        tel, report = fig5_run
        ranks = report.profile["ranks"]
        # the spare (world rank RANKS) adopted rank 2's checkpoint id but
        # its recovery time must land on its own physical timeline
        repl = ranks[str(RANKS)]["categories"]
        dead = ranks[str(KILL_RANK)]["categories"]
        assert repl[VELOC_RECOVER] > 0.0
        assert dead[VELOC_RECOVER] == 0.0

    def test_survivors_recompute_attributed(self, fig5_run):
        _, report = fig5_run
        ranks = report.profile["ranks"]
        for r in range(RANKS):
            if r == KILL_RANK:
                continue
            assert ranks[str(r)]["categories"][RECOMPUTE] > 0.0, r
        # the dead process never reached the rollback
        assert ranks[str(KILL_RANK)]["categories"][RECOMPUTE] == 0.0

    def test_kr_restore_stage_present(self, fig5_run):
        _, report = fig5_run
        mean = report.profile["mean"]
        assert mean[KR_RESTORE] > 0.0

    def test_dead_rank_timeline_ends_at_kill(self, fig5_run):
        tel, report = fig5_run
        kill = tel.tracer.first("rank_killed", source=f"rank{KILL_RANK}")
        entry = report.profile["ranks"][str(KILL_RANK)]
        assert entry["end"] == pytest.approx(kill.start)

    def test_summarize_built_from_ledger_conserves_wall(self, fig5_run):
        _, report = fig5_run
        row = summarize_categories(report)
        assert set(row) == set(HEATDIS_CATEGORIES)
        assert sum(row.values()) == pytest.approx(report.wall_time)
        mean = report.profile["mean"]
        assert row["data_recovery"] == pytest.approx(
            mean[KR_RESTORE] + mean[VELOC_RECOVER]
        )
        assert row["recompute"] == pytest.approx(mean[RECOMPUTE])

    def test_report_to_dict_includes_profile(self, fig5_run):
        _, report = fig5_run
        doc = report_to_dict(report)
        assert doc["profile"] is report.profile


class TestCleanRunLedger:
    def test_no_recovery_categories(self, clean_run):
        _, report = clean_run
        mean = report.profile["mean"]
        assert mean[RECOMPUTE] == 0.0
        assert mean[VELOC_RECOVER] == 0.0
        assert mean[FAILURE_DETECTION] == 0.0

    def test_conserves(self, clean_run):
        tel, report = clean_run
        assert_conserved(build_ledger(tel, wall_time=report.wall_time))


class TestPartialRollbackLedger:
    def test_survivor_replay_is_recompute_not_compute(self, partial_run):
        """Under recovered_only scope the survivors still re-execute the
        interrupted region body; that work must be charged to recompute
        even though it is made of ordinary compute/mpi spans."""
        tel, report = partial_run
        assert_conserved(build_ledger(tel, wall_time=report.wall_time))
        recompute_ranks = {
            int(s.source[len("rank"):])
            for s in tel.tracer.find(name="recompute")
        }
        assert recompute_ranks, "no recompute spans recorded"
        ranks = report.profile["ranks"]
        for r in recompute_ranks:
            entry = ranks[str(r)]["categories"]
            assert entry[RECOMPUTE] > 0.0, r
        # nested compute inside any recompute window never leaks into
        # the compute category: recompute covers at least the nested
        # compute seconds
        for s in tel.tracer.find(name="recompute"):
            rank = int(s.source[len("rank"):])
            nested = [
                c for c in tel.tracer.spans
                if c.name == "compute" and c.source == s.source
                and s.start <= c.start and c.end is not None
                and c.end <= s.end
            ]
            nested_time = sum(c.end - c.start for c in nested)
            assert ranks[str(rank)]["categories"][RECOMPUTE] >= (
                nested_time - 1e-9
            )
