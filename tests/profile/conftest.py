"""Shared profiled runs (module-scoped: each scenario simulates once)."""

import pytest

from repro.apps.heatdis import HeatdisConfig
from repro.experiments.common import paper_env
from repro.harness.runner import run_heatdis_job
from repro.sim.failures import IterationFailure, NoFailures
from repro.telemetry import Telemetry

RANKS = 4
INTERVAL = 10
KILL_RANK = 2


def run_profiled(strategy, plan, n_iters=30, bytes_per_rank=16e6,
                 **kwargs):
    """One profiled heatdis job; returns (telemetry, report)."""
    from repro.harness.strategies import STRATEGIES

    n_spares = 1 if STRATEGIES[strategy].fenix else 0
    env = paper_env(RANKS + max(n_spares, 1), n_spares=n_spares,
                    pfs_servers=2)
    cfg = HeatdisConfig(n_iters=n_iters,
                        modeled_bytes_per_rank=bytes_per_rank)
    tel = Telemetry(enabled=True)
    report = run_heatdis_job(env, strategy, RANKS, cfg, INTERVAL,
                             plan=plan, telemetry=tel, profile=True,
                             **kwargs)
    return tel, report


@pytest.fixture(scope="module")
def fig5_run():
    """Fenix+KR+VeloC heatdis, rank 2 killed between checkpoints 1-2."""
    plan = IterationFailure.between_checkpoints(KILL_RANK, INTERVAL, 1)
    return run_profiled("fenix_kr_veloc", plan)


@pytest.fixture(scope="module")
def clean_run():
    """Same stack with no failure injected."""
    return run_profiled("fenix_kr_veloc", NoFailures())


@pytest.fixture(scope="module")
def partial_run():
    """Partial-rollback strategy (convergence mode, as required by the
    recovered_only scope): rank 1 killed between checkpoints 2-3."""
    env = paper_env(RANKS + 1, n_spares=1, pfs_servers=2)
    cfg = HeatdisConfig(local_rows=8, cols=16,
                        modeled_bytes_per_rank=16e6, n_iters=2000,
                        convergence_threshold=1.0, work_multiplier=200.0)
    plan = IterationFailure.between_checkpoints(1, 60, 2)
    tel = Telemetry(enabled=True)
    report = run_heatdis_job(env, "fenix_kr_partial", RANKS, cfg, 60,
                             plan=plan, telemetry=tel, profile=True)
    return tel, report


@pytest.fixture(scope="module")
def shrink_run():
    """PROTOCOLS.md section-4 scenario: elastic heatdis, zero spares,
    shrink policy -- rank 1 dies and the job continues on 2 ranks."""
    from repro.apps.heatdis_elastic import make_elastic_heatdis_main
    from repro.fenix import FenixSystem
    from repro.harness.recompute import RecomputeTracker
    from repro.mpi import World
    from repro.sim import Cluster
    from tests.apps.conftest import app_cluster

    n_ranks = 3
    tel = Telemetry(enabled=True)
    base = app_cluster(n_ranks)
    cluster = Cluster(base.spec, telemetry=tel)
    plan = IterationFailure([(1, 17)])
    world = World(cluster, n_ranks)
    system = FenixSystem(world, n_spares=0, spare_policy="shrink")
    cfg = HeatdisConfig(local_rows=12 // n_ranks, cols=16,
                        modeled_bytes_per_rank=16e6, n_iters=30)
    results = {}
    main = make_elastic_heatdis_main(
        cfg, cluster, 12, n_ranks, 6, failure_plan=plan, results=results,
        tracker=RecomputeTracker(),
    )

    def wrapped(rank):
        yield from system.run(world.context(rank), main)

    for r in range(n_ranks):
        world.spawn(r, wrapped(r), failure_plan=plan)
    cluster.engine.run()
    world.raise_job_errors()
    return tel, system, results
