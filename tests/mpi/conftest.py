"""Shared helpers for MPI-layer tests."""

import pytest

from repro.sim import Cluster, ClusterSpec, NetworkSpec, NodeSpec
from repro.mpi import World


def small_cluster(n_nodes: int) -> Cluster:
    """A fast, low-latency cluster for protocol tests."""
    return Cluster(
        ClusterSpec(
            n_nodes=n_nodes,
            node=NodeSpec(
                nic_bandwidth=1e9, nic_latency=1e-6, memory_bandwidth=1e10
            ),
            network=NetworkSpec(fabric_latency=0.0),
        )
    )


def run_ranks(n_ranks, body, n_nodes=None, ranks_per_node=None, until=None):
    """Run ``body(handle)`` as every rank's main; returns {rank: result}.

    ``body`` is a generator function taking the rank's COMM_WORLD handle.
    """
    n_nodes = n_nodes if n_nodes is not None else n_ranks
    rpn = ranks_per_node if ranks_per_node is not None else max(
        1, -(-n_ranks // n_nodes)
    )
    cluster = small_cluster(n_nodes)
    world = World(cluster, n_ranks, ranks_per_node=rpn)
    results = {}

    def main(rank):
        handle = world.comm_world_handle(rank)
        res = yield from body(handle)
        results[rank] = res

    for r in range(n_ranks):
        world.spawn(r, main(r))
    if until is None:
        cluster.engine.run()
    else:
        cluster.engine.run(until=until)
    world.raise_job_errors()
    return results, world


@pytest.fixture
def ranks4():
    """Convenience: a 4-rank world builder."""

    def runner(body):
        results, _world = run_ranks(4, body)
        return results

    return runner
