"""payload size estimation and send-time snapshot semantics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.mpi.status import freeze_payload, payload_nbytes


class TestPayloadNbytes:
    def test_none_is_zero(self):
        assert payload_nbytes(None) == 0.0

    def test_ndarray_exact(self):
        assert payload_nbytes(np.zeros((4, 4))) == 128.0
        assert payload_nbytes(np.zeros(3, dtype=np.int32)) == 12.0

    def test_bytes_exact(self):
        assert payload_nbytes(b"abcde") == 5.0
        assert payload_nbytes(bytearray(7)) == 7.0

    def test_scalars_flat(self):
        assert payload_nbytes(42) == 8.0
        assert payload_nbytes(3.14) == 8.0
        assert payload_nbytes(True) == 8.0
        assert payload_nbytes(np.float64(1.0)) == 8.0

    def test_string_utf8(self):
        assert payload_nbytes("abc") == 3.0
        assert payload_nbytes("é") == 2.0

    def test_containers_recurse(self):
        assert payload_nbytes([1, 2]) == 16.0 + 16.0
        assert payload_nbytes({"k": 1}) == 16.0 + 1.0 + 8.0
        assert payload_nbytes((np.zeros(2),)) == 16.0 + 16.0

    def test_unknown_object_flat_estimate(self):
        class Thing:
            pass

        assert payload_nbytes(Thing()) == 64.0

    @given(st.integers(min_value=0, max_value=1000))
    def test_array_size_scales(self, n):
        assert payload_nbytes(np.zeros(n)) == 8.0 * n


class TestFreezePayload:
    def test_scalars_pass_through(self):
        for value in (None, 1, 1.5, "x", b"y", True):
            assert freeze_payload(value) is value

    def test_ndarray_copied(self):
        arr = np.arange(4.0)
        frozen = freeze_payload(arr)
        arr[0] = 99.0
        assert frozen[0] == 0.0

    def test_containers_deep_copied(self):
        inner = np.zeros(2)
        payload = {"data": inner, "tag": [1, 2]}
        frozen = freeze_payload(payload)
        inner[0] = 5.0
        payload["tag"].append(3)
        assert frozen["data"][0] == 0.0
        assert frozen["tag"] == [1, 2]
