"""Tests for scan/exscan, comm dup/split, and probing."""

import numpy as np
import pytest

from repro.mpi import SUM, MAX
from tests.mpi.conftest import run_ranks


class TestScan:
    @pytest.mark.parametrize("size", [1, 2, 5, 8])
    def test_inclusive_scan(self, size):
        def body(h):
            return (yield from h.scan(h.rank + 1, op=SUM))

        results, _ = run_ranks(size, body)
        for r in range(size):
            assert results[r] == sum(range(1, r + 2))

    def test_exclusive_scan(self):
        def body(h):
            return (yield from h.exscan(h.rank + 1, op=SUM))

        results, _ = run_ranks(4, body)
        assert results[0] is None
        assert results[1] == 1
        assert results[2] == 3
        assert results[3] == 6

    def test_scan_with_max(self):
        values = [3, 1, 7, 2]

        def body(h):
            return (yield from h.scan(values[h.rank], op=MAX))

        results, _ = run_ranks(4, body)
        assert [results[r] for r in range(4)] == [3, 3, 7, 7]

    def test_scan_arrays(self):
        def body(h):
            return (yield from h.scan(np.full(3, float(h.rank + 1)), op=SUM))

        results, _ = run_ranks(3, body)
        assert np.array_equal(results[2], np.full(3, 6.0))


class TestDup:
    def test_dup_same_group_fresh_context(self):
        def body(h):
            dup = yield from h.dup()
            assert dup.rank == h.rank
            assert dup.size == h.size
            assert dup.comm is not h.comm
            total = yield from dup.allreduce(1, op=SUM)
            return int(total)

        results, _ = run_ranks(4, body)
        assert all(v == 4 for v in results.values())

    def test_messages_do_not_cross_communicators(self):
        def body(h):
            dup = yield from h.dup()
            if h.rank == 0:
                yield from h.send("on-world", dest=1, tag=7)
                yield from dup.send("on-dup", dest=1, tag=7)
                return None
            if h.rank == 1:
                got_dup = yield from dup.recv(source=0, tag=7)
                got_world = yield from h.recv(source=0, tag=7)
                return (got_world, got_dup)
            return None

        results, _ = run_ranks(2, body)
        assert results[1] == ("on-world", "on-dup")


class TestSplit:
    def test_split_even_odd(self):
        def body(h):
            sub = yield from h.split(color=h.rank % 2)
            total = yield from sub.allreduce(h.rank, op=SUM)
            return (sub.rank, sub.size, int(total))

        results, _ = run_ranks(6, body)
        # evens {0,2,4} and odds {1,3,5}
        assert results[0] == (0, 3, 6)
        assert results[2] == (1, 3, 6)
        assert results[1] == (0, 3, 9)
        assert results[5] == (2, 3, 9)

    def test_split_key_reorders(self):
        def body(h):
            # reverse order within one color group
            sub = yield from h.split(color=0, key=-h.rank)
            return sub.rank

        results, _ = run_ranks(4, body)
        assert results[3] == 0
        assert results[0] == 3

    def test_negative_color_excluded(self):
        def body(h):
            color = -1 if h.rank == 2 else 0
            sub = yield from h.split(color=color)
            if sub is None:
                return "excluded"
            return sub.size

        results, _ = run_ranks(4, body)
        assert results[2] == "excluded"
        assert results[0] == 3


class TestIprobe:
    def test_probe_sees_buffered_message(self):
        def body(h):
            if h.rank == 0:
                yield from h.send(b"abc", dest=1, tag=9)
                return None
            yield from h.ctx.sleep(1.0)  # let the message arrive
            status = h.iprobe(source=0, tag=9)
            payload = yield from h.recv(source=0, tag=9)
            return (status.source, status.tag, status.nbytes, payload)

        results, _ = run_ranks(2, body)
        assert results[1] == (0, 9, 3.0, b"abc")

    def test_probe_returns_none_when_empty(self):
        def body(h):
            status = h.iprobe()
            yield from h.barrier()
            return status

        results, _ = run_ranks(2, body)
        assert all(v is None for v in results.values())
