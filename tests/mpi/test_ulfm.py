"""ULFM fault-tolerance semantics: failure reporting, revoke, shrink, agree."""

import pytest

from repro.mpi import ProcFailedError, RevokedError, SUM, World
from repro.sim import TimedFailure
from repro.sim.failures import RankKilledError
from tests.mpi.conftest import small_cluster


def run_world(n_ranks, body, kills=None):
    """Run body(handle) on every rank with optional timed kills."""
    cluster = small_cluster(n_ranks)
    world = World(cluster, n_ranks)
    plan = TimedFailure(kills or [])
    results = {}

    def main(rank):
        handle = world.comm_world_handle(rank)
        res = yield from body(handle)
        results[rank] = res

    for r in range(n_ranks):
        world.spawn(r, main(r), failure_plan=plan)
    cluster.engine.run()
    world.raise_job_errors()
    return results, world


class TestFailureReporting:
    def test_send_to_dead_rank_raises(self):
        def body(h):
            if h.rank == 1:
                yield from h.ctx.sleep(100.0)  # will be killed at t=1
                return "unreachable"
            if h.rank == 0:
                yield from h.ctx.sleep(2.0)  # wait until 1 is dead
                try:
                    yield from h.send("hi", dest=1)
                except ProcFailedError as exc:
                    return ("failed", sorted(exc.ranks))
            return None

        results, world = run_world(2, body, kills=[(1, 1.0)])
        assert results[0] == ("failed", [1])
        assert world.dead == {1}

    def test_recv_from_dead_rank_raises(self):
        def body(h):
            if h.rank == 1:
                yield from h.ctx.sleep(100.0)
                return None
            if h.rank == 0:
                yield from h.ctx.sleep(2.0)
                try:
                    yield from h.recv(source=1)
                except ProcFailedError:
                    return "reported"
            return None

        results, _ = run_world(2, body, kills=[(1, 1.0)])
        assert results[0] == "reported"

    def test_pending_recv_interrupted_by_death(self):
        # rank 0 posts the recv BEFORE rank 1 dies; the failure must
        # interrupt the pending operation (ULFM requirement).
        def body(h):
            if h.rank == 1:
                yield from h.ctx.sleep(100.0)
                return None
            if h.rank == 0:
                try:
                    yield from h.recv(source=1)
                except ProcFailedError:
                    return ("interrupted", h.engine.now)
            return None

        results, _ = run_world(2, body, kills=[(1, 5.0)])
        tag, when = results[0]
        assert tag == "interrupted"
        assert when == pytest.approx(5.0)

    def test_message_sent_before_death_still_deliverable(self):
        # Data that left the sender before it died is delivered (matches
        # MPI completion semantics for already-buffered messages).
        def body(h):
            if h.rank == 1:
                req = h.isend("legacy", dest=0)
                yield from h.ctx.sleep(100.0)
                return None
            if h.rank == 0:
                yield from h.ctx.sleep(2.0)  # rank 1 died at t=1
                data = yield from h.recv(source=1)
                return data
            return None

        results, _ = run_world(2, body, kills=[(1, 1.0)])
        assert results[0] == "legacy"

    def test_collective_entry_fails_with_dead_member(self):
        def body(h):
            if h.rank == 2:
                yield from h.ctx.sleep(100.0)
                return None
            yield from h.ctx.sleep(2.0)
            try:
                yield from h.allreduce(1, op=SUM)
            except ProcFailedError:
                return "collective-failed"
            return None

        results, _ = run_world(3, body, kills=[(2, 1.0)])
        assert results[0] == "collective-failed"
        assert results[1] == "collective-failed"

    def test_get_failed_lists_dead(self):
        def body(h):
            if h.rank == 1:
                yield from h.ctx.sleep(100.0)
                return None
            yield from h.ctx.sleep(2.0)
            return h.get_failed()

        results, _ = run_world(3, body, kills=[(1, 1.0)])
        assert results[0] == [1]
        assert results[2] == [1]

    def test_ack_failed(self):
        def body(h):
            if h.rank == 1:
                yield from h.ctx.sleep(100.0)
                return None
            yield from h.ctx.sleep(2.0)
            return sorted(h.ack_failed())

        results, _ = run_world(2, body, kills=[(1, 1.0)])
        assert results[0] == [1]


class TestRevoke:
    def test_revoke_wakes_blocked_ranks(self):
        # rank 2 blocks in a recv that would never complete; rank 0
        # revokes; rank 2 must get RevokedError promptly.
        def body(h):
            if h.rank == 0:
                yield from h.ctx.sleep(1.0)
                h.revoke()
                return "revoked"
            try:
                yield from h.recv(source=0, tag=99)
            except RevokedError:
                return ("woken", h.engine.now)
            return None

        results, _ = run_world(3, body)
        assert results[0] == "revoked"
        assert results[1][0] == "woken"
        assert results[1][1] == pytest.approx(1.0)
        assert results[2][0] == "woken"

    def test_operations_after_revoke_raise(self):
        def body(h):
            h.revoke()
            try:
                yield from h.send("x", dest=(h.rank + 1) % h.size)
            except RevokedError:
                return "rejected"
            return None

        results, _ = run_world(2, body)
        assert all(v == "rejected" for v in results.values())

    def test_revoke_idempotent(self):
        def body(h):
            h.revoke()
            h.revoke()
            return "ok"
            yield  # pragma: no cover - make it a generator

        results, _ = run_world(2, body)
        assert all(v == "ok" for v in results.values())


class TestAgree:
    def test_agree_ands_flags(self):
        def body(h):
            flag = h.rank != 1
            result, failed = yield from h.agree(flag)
            return (result, sorted(failed))

        results, _ = run_world(3, body)
        assert all(v == (False, []) for v in results.values())

    def test_agree_all_true(self):
        def body(h):
            result, _ = yield from h.agree(True)
            return result

        results, _ = run_world(4, body)
        assert all(v is True for v in results.values())

    def test_agree_works_on_revoked_comm(self):
        def body(h):
            if h.rank == 0:
                h.revoke()
            result, _ = yield from h.agree(True)
            return result

        results, _ = run_world(3, body)
        assert all(v is True for v in results.values())

    def test_agree_completes_despite_death_during_wait(self):
        # rank 2 dies before arriving at agree; survivors must not hang.
        def body(h):
            if h.rank == 2:
                yield from h.ctx.sleep(100.0)
                return None
            result, failed = yield from h.agree(True)
            return (result, sorted(failed))

        results, _ = run_world(3, body, kills=[(2, 1.0)])
        assert results[0] == (True, [2])
        assert results[1] == (True, [2])


class TestShrink:
    def test_shrink_excludes_dead(self):
        def body(h):
            if h.rank == 1:
                yield from h.ctx.sleep(100.0)
                return None
            yield from h.ctx.sleep(2.0)
            new_h = yield from h.shrink()
            return (new_h.rank, new_h.size)

        results, _ = run_world(3, body, kills=[(1, 1.0)])
        # survivors 0 and 2 keep relative order: 0 -> rank0, 2 -> rank1
        assert results[0] == (0, 2)
        assert results[2] == (1, 2)

    def test_shrunk_comm_is_usable(self):
        def body(h):
            if h.rank == 1:
                yield from h.ctx.sleep(100.0)
                return None
            yield from h.ctx.sleep(2.0)
            new_h = yield from h.shrink()
            total = yield from new_h.allreduce(1, op=SUM)
            return int(total)

        results, _ = run_world(4, body, kills=[(1, 1.0)])
        assert results[0] == 3
        assert results[2] == 3
        assert results[3] == 3

    def test_shrink_on_revoked_comm(self):
        def body(h):
            if h.rank == 0:
                h.revoke()
            new_h = yield from h.shrink()
            return new_h.size

        results, _ = run_world(3, body)
        assert all(v == 3 for v in results.values())


class TestWorldBookkeeping:
    def test_failure_watch_fires_with_rank(self):
        observed = {}

        def body(h):
            if h.rank == 1:
                yield from h.ctx.sleep(100.0)
                return None
            if h.rank == 0:
                dead_rank = yield h.ctx.world.failure_watch()
                observed["dead"] = dead_rank
            return None

        run_world(2, body, kills=[(1, 3.0)])
        assert observed["dead"] == 1

    def test_crash_surfaces_via_raise_job_errors(self):
        def body(h):
            if h.rank == 0:
                yield from h.ctx.sleep(0.1)
                raise RuntimeError("app bug")
            yield from h.ctx.sleep(0.1)
            return None

        cluster = small_cluster(2)
        world = World(cluster, 2)

        def main(rank):
            handle = world.comm_world_handle(rank)
            yield from body(handle)

        for r in range(2):
            world.spawn(r, main(r))
        cluster.engine.run()
        with pytest.raises(RuntimeError, match="app bug"):
            world.raise_job_errors()

    def test_alive_ranks_updates(self):
        def body(h):
            if h.rank == 1:
                yield from h.ctx.sleep(100.0)
            else:
                yield from h.ctx.sleep(2.0)
            return None

        _, world = run_world(3, body, kills=[(1, 1.0)])
        assert world.alive_ranks() == [0, 2]
        assert not world.is_alive(1)
