"""Point-to-point messaging tests."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG
from tests.mpi.conftest import run_ranks


class TestBasicSendRecv:
    def test_python_object_roundtrip(self):
        def body(h):
            if h.rank == 0:
                yield from h.send({"a": 7, "b": 3.14}, dest=1, tag=11)
                return None
            if h.rank == 1:
                data = yield from h.recv(source=0, tag=11)
                return data
            return None

        results, _ = run_ranks(2, body)
        assert results[1] == {"a": 7, "b": 3.14}

    def test_numpy_array_roundtrip(self):
        def body(h):
            if h.rank == 0:
                yield from h.send(np.arange(100, dtype=np.float64), dest=1)
            elif h.rank == 1:
                data = yield from h.recv(source=0)
                return data.sum()
            return None

        results, _ = run_ranks(2, body)
        assert results[1] == pytest.approx(np.arange(100).sum())

    def test_send_copies_payload(self):
        # MPI value semantics: mutating the buffer after send must not
        # affect the delivered message.
        def body(h):
            if h.rank == 0:
                buf = np.zeros(4)
                req = h.isend(buf, dest=1)
                buf[:] = 99.0
                yield from h.waitall([req])
            elif h.rank == 1:
                data = yield from h.recv(source=0)
                return float(data.sum())
            return None

        results, _ = run_ranks(2, body)
        assert results[1] == 0.0

    def test_tag_matching(self):
        def body(h):
            if h.rank == 0:
                yield from h.send("tagA", dest=1, tag=5)
                yield from h.send("tagB", dest=1, tag=6)
            elif h.rank == 1:
                # receive in reverse tag order: matching must be by tag
                b = yield from h.recv(source=0, tag=6)
                a = yield from h.recv(source=0, tag=5)
                return (a, b)
            return None

        results, _ = run_ranks(2, body)
        assert results[1] == ("tagA", "tagB")

    def test_message_ordering_same_tag(self):
        def body(h):
            if h.rank == 0:
                for i in range(5):
                    yield from h.send(i, dest=1, tag=0)
            elif h.rank == 1:
                got = []
                for _ in range(5):
                    got.append((yield from h.recv(source=0, tag=0)))
                return got
            return None

        results, _ = run_ranks(2, body)
        assert results[1] == [0, 1, 2, 3, 4]

    def test_any_source_any_tag(self):
        def body(h):
            if h.rank in (0, 2):
                yield from h.send(f"from{h.rank}", dest=1, tag=h.rank)
            elif h.rank == 1:
                a = yield from h.recv(source=ANY_SOURCE, tag=ANY_TAG)
                b = yield from h.recv(source=ANY_SOURCE, tag=ANY_TAG)
                return {a, b}
            return None

        results, _ = run_ranks(3, body)
        assert results[1] == {"from0", "from2"}

    def test_recv_status(self):
        def body(h):
            if h.rank == 0:
                yield from h.send(b"xyz", dest=1, tag=42)
            elif h.rank == 1:
                payload, status = yield from h.recv_status(source=ANY_SOURCE)
                return (payload, status.source, status.tag, status.nbytes)
            return None

        results, _ = run_ranks(2, body)
        assert results[1] == (b"xyz", 0, 42, 3.0)


class TestNonblocking:
    def test_isend_irecv_waitall(self):
        def body(h):
            if h.rank == 0:
                reqs = [h.isend(i, dest=1, tag=i) for i in range(3)]
                yield from h.waitall(reqs)
            elif h.rank == 1:
                reqs = [h.irecv(source=0, tag=i) for i in range(3)]
                values = yield from h.waitall(reqs)
                return [payload for payload, _status in values]
            return None

        results, _ = run_ranks(2, body)
        assert results[1] == [0, 1, 2]

    def test_request_test_flag(self):
        def body(h):
            if h.rank == 0:
                req = h.isend("x", dest=1)
                assert not req.test()
                yield from h.waitall([req])
                assert req.test()
            elif h.rank == 1:
                yield from h.recv(source=0)
            return None

        run_ranks(2, body)

    def test_sendrecv_exchange(self):
        def body(h):
            partner = 1 - h.rank
            got = yield from h.sendrecv(
                f"hello-from-{h.rank}", dest=partner, source=partner
            )
            return got

        results, _ = run_ranks(2, body)
        assert results[0] == "hello-from-1"
        assert results[1] == "hello-from-0"

    def test_ring_sendrecv(self):
        def body(h):
            right = (h.rank + 1) % h.size
            left = (h.rank - 1) % h.size
            got = yield from h.sendrecv(h.rank, dest=right, source=left)
            return got

        results, _ = run_ranks(5, body)
        for r in range(5):
            assert results[r] == (r - 1) % 5


class TestTimingAndSizes:
    def test_mpi_time_charged(self):
        def body(h):
            if h.rank == 0:
                yield from h.send(np.zeros(1000), dest=1)
            else:
                yield from h.recv(source=0)
            return h.ctx.account.get("app_mpi")

        results, _ = run_ranks(2, body)
        assert results[0] > 0.0
        assert results[1] > 0.0

    def test_modeled_nbytes_scales_time(self):
        def make_body(nbytes):
            def body(h):
                if h.rank == 0:
                    yield from h.send(b"tiny", dest=1, nbytes=nbytes)
                else:
                    yield from h.recv(source=0)
                return h.ctx.account.get("app_mpi")

            return body

        small, _ = run_ranks(2, make_body(1e3))
        large, _ = run_ranks(2, make_body(1e8))
        assert large[1] > small[1] * 100

    def test_zero_byte_message(self):
        def body(h):
            if h.rank == 0:
                yield from h.send(None, dest=1, nbytes=0.0)
            else:
                return (yield from h.recv(source=0))
            return None

        results, _ = run_ranks(2, body)
        assert results[1] is None
