"""Property-based tests: collectives agree with numpy on arbitrary inputs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi import MAX, MIN, PROD, SUM
from tests.mpi.conftest import run_ranks

finite = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False)


@settings(max_examples=20, deadline=None)
@given(values=st.lists(finite, min_size=1, max_size=8))
def test_gather_preserves_order_and_values(values):
    size = len(values)

    def body(h):
        return (yield from h.gather(values[h.rank], root=0))

    results, _ = run_ranks(size, body)
    assert results[0] == values


@settings(max_examples=20, deadline=None)
@given(values=st.lists(finite, min_size=1, max_size=8), root_seed=st.integers(0, 100))
def test_bcast_delivers_identical_value(values, root_seed):
    size = len(values)
    root = root_seed % size

    def body(h):
        payload = values if h.rank == root else None
        return (yield from h.bcast(payload, root=root))

    results, _ = run_ranks(size, body)
    for r in range(size):
        assert results[r] == values


@settings(max_examples=15, deadline=None)
@given(
    data=st.lists(
        st.lists(finite, min_size=3, max_size=3), min_size=2, max_size=6
    ),
)
def test_reduce_ops_match_numpy(data):
    size = len(data)
    arrays = [np.array(row) for row in data]

    def body(h):
        s = yield from h.allreduce(arrays[h.rank], op=SUM)
        mn = yield from h.allreduce(arrays[h.rank], op=MIN)
        mx = yield from h.allreduce(arrays[h.rank], op=MAX)
        return (s, mn, mx)

    results, _ = run_ranks(size, body)
    stacked = np.stack(arrays)
    for r in range(size):
        s, mn, mx = results[r]
        np.testing.assert_allclose(s, stacked.sum(axis=0), rtol=1e-9, atol=1e-6)
        np.testing.assert_array_equal(mn, stacked.min(axis=0))
        np.testing.assert_array_equal(mx, stacked.max(axis=0))


@settings(max_examples=15, deadline=None)
@given(size=st.integers(min_value=1, max_value=7), shift=st.integers(0, 6))
def test_alltoall_is_transpose(size, shift):
    def body(h):
        values = [(h.rank * 31 + (dst + shift) * 7) for dst in range(size)]
        return (yield from h.alltoall(values))

    results, _ = run_ranks(size, body)
    for r in range(size):
        assert results[r] == [src * 31 + (r + shift) * 7 for src in range(size)]


@settings(max_examples=10, deadline=None)
@given(size=st.integers(min_value=2, max_value=8))
def test_barrier_enforces_global_order(size):
    def body(h):
        yield from h.ctx.sleep(float(h.rank) * 0.5)
        yield from h.barrier()
        return h.engine.now

    results, _ = run_ranks(size, body)
    slowest_arrival = (size - 1) * 0.5
    for t in results.values():
        assert t >= slowest_arrival


@settings(max_examples=10, deadline=None)
@given(
    payload=st.one_of(
        st.integers(),
        st.text(max_size=20),
        st.dictionaries(st.text(max_size=3), st.integers(), max_size=4),
        st.lists(finite, max_size=5),
    )
)
def test_send_recv_arbitrary_payload(payload):
    def body(h):
        if h.rank == 0:
            yield from h.send(payload, dest=1)
            return None
        return (yield from h.recv(source=0))

    results, _ = run_ranks(2, body)
    assert results[1] == payload
