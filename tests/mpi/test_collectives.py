"""Collective-operation correctness across sizes, roots, datatypes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi import LAND, LOR, MAX, MIN, PROD, SUM
from tests.mpi.conftest import run_ranks


SIZES = [1, 2, 3, 4, 5, 7, 8]


class TestBcast:
    @pytest.mark.parametrize("size", SIZES)
    def test_bcast_from_zero(self, size):
        def body(h):
            value = {"payload": 123} if h.rank == 0 else None
            got = yield from h.bcast(value, root=0)
            return got

        results, _ = run_ranks(size, body)
        assert all(results[r] == {"payload": 123} for r in range(size))

    @pytest.mark.parametrize("root", [0, 1, 2, 3])
    def test_bcast_nonzero_root(self, root):
        def body(h):
            value = f"root-data-{h.rank}" if h.rank == root else None
            got = yield from h.bcast(value, root=root)
            return got

        results, _ = run_ranks(4, body)
        assert all(results[r] == f"root-data-{root}" for r in range(4))

    def test_bcast_numpy(self):
        def body(h):
            value = np.arange(50) if h.rank == 0 else None
            got = yield from h.bcast(value, root=0)
            return got.sum()

        results, _ = run_ranks(6, body)
        assert all(v == np.arange(50).sum() for v in results.values())


class TestReduce:
    @pytest.mark.parametrize("size", SIZES)
    def test_reduce_sum_scalar(self, size):
        def body(h):
            got = yield from h.reduce(h.rank + 1, op=SUM, root=0)
            return got

        results, _ = run_ranks(size, body)
        assert results[0] == sum(range(1, size + 1))
        assert all(results[r] is None for r in range(1, size))

    @pytest.mark.parametrize("op,expected", [
        (SUM, 0 + 1 + 2 + 3),
        (MIN, 0),
        (MAX, 3),
        (PROD, 0),
    ])
    def test_reduce_ops(self, op, expected):
        def body(h):
            return (yield from h.reduce(h.rank, op=op, root=0))

        results, _ = run_ranks(4, body)
        assert results[0] == expected

    def test_reduce_arrays_elementwise(self):
        def body(h):
            local = np.full(8, float(h.rank))
            got = yield from h.reduce(local, op=MAX, root=2)
            return got

        results, _ = run_ranks(5, body)
        assert np.array_equal(results[2], np.full(8, 4.0))

    def test_logical_ops(self):
        def body(h):
            flag = h.rank != 2  # one rank contributes False
            land = yield from h.allreduce(flag, op=LAND)
            lor = yield from h.allreduce(h.rank == 2, op=LOR)
            return (bool(land), bool(lor))

        results, _ = run_ranks(4, body)
        assert all(v == (False, True) for v in results.values())


class TestAllreduce:
    @pytest.mark.parametrize("size", SIZES)
    def test_allreduce_sum(self, size):
        def body(h):
            got = yield from h.allreduce(np.array([h.rank, 1.0]), op=SUM)
            return got

        results, _ = run_ranks(size, body)
        expected = np.array([sum(range(size)), float(size)])
        for r in range(size):
            assert np.allclose(results[r], expected)

    @settings(max_examples=15, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=6,
        )
    )
    def test_allreduce_matches_numpy(self, values):
        size = len(values)

        def body(h):
            got = yield from h.allreduce(values[h.rank], op=SUM)
            return got

        results, _ = run_ranks(size, body)
        expected = float(np.sum(values))
        for r in range(size):
            assert results[r] == pytest.approx(expected, rel=1e-9, abs=1e-9)


class TestBarrier:
    def test_barrier_synchronizes(self):
        after_times = {}

        def body(h):
            # stagger arrival: rank r computes r seconds first
            yield from h.ctx.sleep(float(h.rank))
            yield from h.barrier()
            after_times[h.rank] = h.engine.now
            return None

        _, world = run_ranks(4, body)
        latest_arrival = 3.0
        for t in after_times.values():
            assert t >= latest_arrival

    def test_barrier_single_rank(self):
        def body(h):
            yield from h.barrier()
            return "done"

        results, _ = run_ranks(1, body)
        assert results[0] == "done"


class TestGatherScatter:
    @pytest.mark.parametrize("size", SIZES)
    def test_gather(self, size):
        def body(h):
            got = yield from h.gather(h.rank * 10, root=0)
            return got

        results, _ = run_ranks(size, body)
        assert results[0] == [r * 10 for r in range(size)]
        assert all(results[r] is None for r in range(1, size))

    def test_gather_nonzero_root(self):
        def body(h):
            return (yield from h.gather(chr(ord("a") + h.rank), root=3))

        results, _ = run_ranks(5, body)
        assert results[3] == ["a", "b", "c", "d", "e"]

    @pytest.mark.parametrize("size", SIZES)
    def test_scatter(self, size):
        def body(h):
            values = [f"item{i}" for i in range(size)] if h.rank == 0 else None
            got = yield from h.scatter(values, root=0)
            return got

        results, _ = run_ranks(size, body)
        assert all(results[r] == f"item{r}" for r in range(size))

    def test_scatter_wrong_length_rejected(self):
        def body(h):
            values = [1] if h.rank == 0 else None
            got = yield from h.scatter(values, root=0)
            return got

        with pytest.raises(Exception):
            run_ranks(3, body)

    @pytest.mark.parametrize("size", SIZES)
    def test_allgather(self, size):
        def body(h):
            got = yield from h.allgather(h.rank**2)
            return got

        results, _ = run_ranks(size, body)
        expected = [r**2 for r in range(size)]
        for r in range(size):
            assert results[r] == expected


class TestAlltoall:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 6])
    def test_alltoall(self, size):
        def body(h):
            values = [(h.rank, dst) for dst in range(size)]
            got = yield from h.alltoall(values)
            return got

        results, _ = run_ranks(size, body)
        for r in range(size):
            assert results[r] == [(src, r) for src in range(size)]


class TestConcurrentCollectives:
    def test_back_to_back_collectives_do_not_cross_match(self):
        def body(h):
            a = yield from h.allreduce(1, op=SUM)
            b = yield from h.allreduce(h.rank, op=MAX)
            c = yield from h.bcast("x" if h.rank == 1 else None, root=1)
            return (int(a), int(b), c)

        results, _ = run_ranks(6, body)
        assert all(v == (6, 5, "x") for v in results.values())

    def test_collectives_with_interleaved_p2p(self):
        def body(h):
            partner = (h.rank + 1) % h.size
            source = (h.rank - 1) % h.size
            token = yield from h.sendrecv(h.rank, dest=partner, source=source)
            total = yield from h.allreduce(token, op=SUM)
            return int(total)

        results, _ = run_ranks(4, body)
        assert all(v == 6 for v in results.values())
