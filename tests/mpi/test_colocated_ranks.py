"""Multiple ranks per node: placement, shared NIC, shared scratch."""

import pytest

from repro.mpi import World
from repro.sim import Cluster, ClusterSpec, NetworkSpec, NodeSpec
from repro.util.errors import ConfigError


def packed_cluster(n_nodes):
    return Cluster(
        ClusterSpec(
            n_nodes=n_nodes,
            node=NodeSpec(nic_bandwidth=100.0, nic_latency=0.0,
                          memory_bandwidth=1e6),
            network=NetworkSpec(fabric_latency=0.0),
        )
    )


class TestPlacement:
    def test_block_mapping(self):
        cluster = packed_cluster(2)
        world = World(cluster, 4, ranks_per_node=2)
        assert world.node_of_rank(0).index == 0
        assert world.node_of_rank(1).index == 0
        assert world.node_of_rank(2).index == 1
        assert world.node_of_rank(3).index == 1

    def test_overflow_rejected(self):
        cluster = packed_cluster(1)
        with pytest.raises(ConfigError):
            World(cluster, 3, ranks_per_node=2)

    def test_colocated_ranks_share_scratch(self):
        cluster = packed_cluster(1)
        world = World(cluster, 2, ranks_per_node=2)
        world.context(0).node.scratch["key"] = "value"
        assert world.context(1).node.scratch["key"] == "value"


class TestSharedNIC:
    def test_intra_node_messages_use_memory_not_nic(self):
        cluster = packed_cluster(1)
        world = World(cluster, 2, ranks_per_node=2)
        done = {}

        def body(rank):
            h = world.comm_world_handle(rank)
            if rank == 0:
                yield from h.send(None, dest=1, nbytes=1e5)
            else:
                yield from h.recv(source=0)
            done[rank] = cluster.engine.now

        for r in range(2):
            world.spawn(r, body(r))
        cluster.engine.run()
        # 1e5 bytes over 1e6 B/s memory bw = 0.1s; NIC would need 1000s
        assert done[1] < 1.0
        assert cluster.node(0).tx.bytes_moved == 0.0

    def test_colocated_senders_contend_on_one_nic(self):
        # two ranks on node 0 each send 100B to ranks on node 1:
        # both transfers serialize on node 0's single TX pipe
        cluster = packed_cluster(2)
        world = World(cluster, 4, ranks_per_node=2)
        done = {}

        def body(rank):
            h = world.comm_world_handle(rank)
            if rank in (0, 1):
                yield from h.send(None, dest=rank + 2, nbytes=100.0)
            else:
                yield from h.recv(source=rank - 2)
                done[rank] = cluster.engine.now

        for r in range(4):
            world.spawn(r, body(r))
        cluster.engine.run()
        times = sorted(done.values())
        assert times[0] == pytest.approx(1.0)  # 100B / 100B/s
        assert times[1] == pytest.approx(2.0)  # queued behind the first
