"""Chunked dirty tracking and content hashing on View.

The incremental VeloC data path relies on three guarantees from the
view layer: tracked writes mark exactly the chunks they touch, untracked
escape hatches (raw ``.data`` access, subviews, ``__array__``) degrade
*conservatively* to all-dirty, and chunk hashes follow content.
"""

import numpy as np
import pytest

from repro.kokkos import KokkosRuntime, View, deep_copy
from repro.kokkos.view import DEFAULT_CHUNK_BYTES


@pytest.fixture
def rt():
    return KokkosRuntime()


def chunked_view(rt, rows=64, cols=16, chunk_bytes=None, label="v"):
    # 16 float64 cols = 128 B/row; chunk_bytes=512 -> 4 rows per chunk,
    # 16 chunks total
    return rt.view(label, shape=(rows, cols),
                   chunk_bytes=chunk_bytes or 512)


class TestChunkGeometry:
    def test_chunk_elems_and_count(self, rt):
        v = chunked_view(rt)
        assert v.chunk_elems == 512 // 8
        assert v.n_chunks == 16

    def test_default_chunk_bytes(self, rt):
        v = rt.view("d", shape=(4,))
        assert v.chunk_bytes == DEFAULT_CHUNK_BYTES
        assert v.n_chunks == 1  # small array -> one chunk

    def test_chunk_slices_cover_buffer(self, rt):
        v = chunked_view(rt, rows=10)  # 160 elems, 64/chunk -> ragged tail
        covered = sum(
            v.chunk_array(i).size for i in range(v.n_chunks)
        )
        assert covered == v.size

    def test_tiny_chunk_bytes_floor_one_elem(self, rt):
        v = rt.view("t", shape=(8,), chunk_bytes=1)
        assert v.chunk_elems == 1
        assert v.n_chunks == 8


class TestDirtyMarking:
    def test_new_view_fully_dirty(self, rt):
        v = chunked_view(rt)
        assert v.dirty_chunks() == list(range(16))
        assert v.dirty_fraction == 1.0

    def test_clear_then_clean(self, rt):
        v = chunked_view(rt)
        v.clear_dirty()
        assert v.dirty_chunks() == []
        assert v.dirty_fraction == 0.0

    def test_setitem_row_marks_one_chunk(self, rt):
        v = chunked_view(rt)
        v.clear_dirty()
        v[5] = 1.0  # rows 4-7 live in chunk 1
        assert v.dirty_chunks() == [1]

    def test_setitem_tuple_marks_row_chunk(self, rt):
        v = chunked_view(rt)
        v.clear_dirty()
        v[9, 3] = 2.0
        assert v.dirty_chunks() == [2]

    def test_negative_row_index(self, rt):
        v = chunked_view(rt)
        v.clear_dirty()
        v[-1] = 3.0
        assert v.dirty_chunks() == [15]

    def test_slice_marks_covered_chunks(self, rt):
        v = chunked_view(rt)
        v.clear_dirty()
        v[4:12] = 1.0
        assert v.dirty_chunks() == [1, 2]

    def test_strided_slice_is_conservative(self, rt):
        v = chunked_view(rt)
        v.clear_dirty()
        v[::2] = 1.0
        assert v.dirty_chunks() == list(range(16))

    def test_fancy_index_is_conservative(self, rt):
        v = chunked_view(rt)
        v.clear_dirty()
        v[np.array([0, 40])] = 1.0
        assert v.dirty_chunks() == list(range(16))

    def test_fill_marks_all(self, rt):
        v = chunked_view(rt)
        v.clear_dirty()
        v.fill(7.0)
        assert v.dirty_fraction == 1.0

    def test_load_data_marks_all(self, rt):
        v = chunked_view(rt)
        v.clear_dirty()
        v.load_data(np.ones(v.shape))
        assert v.dirty_fraction == 1.0

    def test_deep_copy_marks_dst(self, rt):
        a = chunked_view(rt, label="a")
        b = chunked_view(rt, label="b")
        b.clear_dirty()
        deep_copy(b, a)
        assert b.dirty_fraction == 1.0


class TestConservativeFallbacks:
    def test_raw_data_read_is_sticky(self, rt):
        v = chunked_view(rt)
        v.clear_dirty()
        _ = v.data  # hands out a mutable alias
        assert v.dirty_chunks() == list(range(16))
        v.clear_dirty()  # clearing must NOT forget the escape
        assert v.dirty_chunks() == list(range(16))

    def test_reset_dirty_tracking_opts_back_in(self, rt):
        v = chunked_view(rt)
        _ = v.data
        v.reset_dirty_tracking()
        assert v.dirty_fraction == 1.0  # next checkpoint is still full
        v.clear_dirty()
        v[0] = 1.0
        assert v.dirty_chunks() == [0]  # exact tracking again

    def test_data_rebind_marks_all(self, rt):
        v = chunked_view(rt)
        v.clear_dirty()
        v.data = np.ones((64, 16))
        assert v.dirty_fraction == 1.0

    def test_subview_taints_parent_and_child(self, rt):
        v = chunked_view(rt)
        v.clear_dirty()
        sub = v.subview(slice(0, 4), label="sub")
        assert v.dirty_chunks() == list(range(16))
        assert sub.dirty_chunks() == list(range(sub.n_chunks))

    def test_array_protocol_no_copy_is_sticky(self, rt):
        v = chunked_view(rt)
        v.clear_dirty()
        np.asarray(v)
        v.clear_dirty()
        assert v.dirty_fraction == 1.0

    def test_getitem_scalar_read_stays_exact(self, rt):
        v = chunked_view(rt)
        v.clear_dirty()
        _ = v[3, 2]  # scalar: no alias escapes
        assert v.dirty_chunks() == []

    def test_getitem_slice_read_is_sticky(self, rt):
        v = chunked_view(rt)
        v.clear_dirty()
        row = v[3]  # an ndarray alias escapes
        assert isinstance(row, np.ndarray)
        assert v.dirty_fraction == 1.0

    def test_non_contiguous_not_chunkable(self):
        base = np.zeros((8, 8))
        v = View("nc", data=base[:, ::2])
        assert not v.chunkable
        v.clear_dirty()
        assert v.dirty_chunks() == list(range(v.n_chunks))


class TestChunkHashing:
    def test_hash_tracks_content(self, rt):
        v = chunked_view(rt)
        h0 = v.chunk_hash(0)
        v[0] = 5.0
        assert v.chunk_hash(0) != h0
        assert len(h0) == 16  # blake2b-128

    def test_hash_cached_until_dirtied(self, rt):
        v = chunked_view(rt)
        assert v.chunk_hash(2) is v.chunk_hash(2)  # cache hit
        v[8] = 1.0  # chunk 2
        h = v.chunk_hash(2)
        assert h == v.chunk_hash(2)

    def test_equal_content_equal_hash_across_views(self, rt):
        a = chunked_view(rt, label="a")
        b = chunked_view(rt, label="b")
        a.fill(3.0)
        b.fill(3.0)
        assert a.chunk_hash(1) == b.chunk_hash(1)
        assert a.chunk_hash(0) == a.chunk_hash(1)  # uniform content


class TestBufferLiveness:
    def test_buffer_id_stable_after_parent_scope_exit(self):
        import gc

        def make():
            base = np.arange(64.0)
            return (View("lo", data=base[:32]), View("hi", data=base[16:]))

        lo, hi = make()  # the caller's `base` reference is gone
        gc.collect()
        # the numpy base chain keeps the root buffer alive, so the ids
        # still agree -- duplicate detection cannot alias a dead buffer
        assert lo.buffer_id() == hi.buffer_id()
        other = View("other", data=np.arange(64.0))
        assert other.buffer_id() != lo.buffer_id()
