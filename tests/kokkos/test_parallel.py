"""Tests for parallel dispatch patterns."""

import numpy as np
import pytest

from repro.kokkos import (
    KokkosRuntime,
    MDRangePolicy,
    RangePolicy,
    parallel_for,
    parallel_reduce,
    parallel_scan,
)
from repro.util.errors import ConfigError


class TestPolicies:
    def test_range_policy_end_only(self):
        assert list(RangePolicy(4).indices()) == [0, 1, 2, 3]

    def test_range_policy_begin_end(self):
        assert list(RangePolicy(2, 5).indices()) == [2, 3, 4]

    def test_range_policy_len(self):
        assert len(RangePolicy(3, 10)) == 7

    def test_negative_range_rejected(self):
        with pytest.raises(ConfigError):
            RangePolicy(5, 2)

    def test_mdrange_row_major(self):
        pol = MDRangePolicy((0, 2), (0, 3))
        assert list(pol.indices()) == [
            (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2),
        ]
        assert len(pol) == 6

    def test_mdrange_requires_dims(self):
        with pytest.raises(ConfigError):
            MDRangePolicy()


class TestParallelFor:
    def test_writes_into_view(self):
        rt = KokkosRuntime()
        v = rt.view("squares", shape=(6,))
        parallel_for(6, lambda i: v.__setitem__(i, float(i * i)))
        assert np.array_equal(v.data, [0.0, 1.0, 4.0, 9.0, 16.0, 25.0])

    def test_int_policy_shortcut(self):
        hits = []
        parallel_for(3, hits.append)
        assert hits == [0, 1, 2]

    def test_mdrange_functor_arity(self):
        rt = KokkosRuntime()
        v = rt.view("grid", shape=(3, 4))
        parallel_for(
            MDRangePolicy((0, 3), (0, 4)),
            lambda i, j: v.__setitem__((i, j), i * 10.0 + j),
        )
        assert v[2, 3] == 23.0

    def test_empty_range_noop(self):
        hits = []
        parallel_for(RangePolicy(3, 3), hits.append)
        assert hits == []


class TestParallelReduce:
    def test_sum_default(self):
        total = parallel_reduce(5, lambda i: i)
        assert total == 10

    def test_custom_joiner_max(self):
        data = [3.0, 7.0, 1.0, 5.0]
        result = parallel_reduce(
            4, lambda i: data[i], init=-np.inf, joiner=max
        )
        assert result == 7.0

    def test_mdrange_reduce(self):
        result = parallel_reduce(MDRangePolicy((0, 2), (0, 2)), lambda i, j: i + j)
        assert result == 0 + 1 + 1 + 2

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        data = rng.random(100)
        result = parallel_reduce(100, lambda i: data[i])
        assert result == pytest.approx(data.sum())


class TestParallelScan:
    def test_inclusive_scan_total(self):
        contributions = [1.0, 2.0, 3.0, 4.0]
        total = parallel_scan(4, lambda i, partial, final: contributions[i])
        assert total == 10.0

    def test_scan_observes_prefix(self):
        prefixes = []

        def functor(i, partial, final):
            prefixes.append(partial)
            return 1.0

        parallel_scan(4, functor)
        assert prefixes == [0.0, 1.0, 2.0, 3.0]

    def test_scan_rejects_mdrange(self):
        with pytest.raises(ConfigError):
            parallel_scan(MDRangePolicy((0, 2)), lambda i, p, f: 0)
