"""Tests for the view registry and the Figure-7-style census."""

import numpy as np
import pytest

from repro.kokkos import KokkosRuntime
from repro.util.errors import ConfigError


@pytest.fixture
def rt():
    return KokkosRuntime()


class TestRegistryBasics:
    def test_lookup_by_label(self, rt):
        v = rt.view("positions", shape=(8,))
        assert rt.registry.find("positions") is v
        assert rt.registry.find("missing") is None

    def test_unregister(self, rt):
        v = rt.view("temp", shape=(2,))
        rt.registry.unregister(v)
        assert rt.registry.find("temp") is None
        rt.registry.unregister(v)  # idempotent

    def test_len_and_iter(self, rt):
        rt.view("a", shape=(1,))
        rt.view("b", shape=(1,))
        assert len(rt.registry) == 2
        assert sorted(v.label for v in rt.registry) == ["a", "b"]

    def test_finalize_clears(self, rt):
        rt.view("a", shape=(1,))
        rt.finalize()
        assert len(rt.registry) == 0
        assert rt.finalized


class TestAliases:
    def test_declare_and_query(self, rt):
        a = rt.view("x", shape=(4,))
        b = rt.view("x_swap", shape=(4,))
        rt.declare_alias("x_swap", "x")
        assert rt.registry.is_alias(b)
        assert not rt.registry.is_alias(a)

    def test_self_alias_rejected(self, rt):
        with pytest.raises(ConfigError):
            rt.declare_alias("x", "x")


class TestCensus:
    def test_distinct_views_all_checkpointed(self, rt):
        views = [rt.view(f"v{i}", shape=(4,)) for i in range(3)]
        census = rt.registry.census()
        assert census.checkpointed == views
        assert census.aliases == []
        assert census.skipped == []

    def test_duplicates_skipped(self, rt):
        base = rt.view("base", shape=(10,))
        dup = base.subview(slice(0, 10), label="captured_copy")
        census = rt.registry.census()
        assert census.checkpointed == [base]
        assert census.skipped == [dup]

    def test_alias_excluded(self, rt):
        main = rt.view("state", shape=(8,))
        swap = rt.view("state_swap", shape=(8,))
        rt.declare_alias("state_swap", "state")
        census = rt.registry.census()
        assert census.checkpointed == [main]
        assert census.aliases == [swap]

    def test_census_on_subset(self, rt):
        a = rt.view("a", shape=(2,))
        b = rt.view("b", shape=(2,))
        census = rt.registry.census([b])
        assert census.checkpointed == [b]

    def test_fig7_style_breakdown(self, rt):
        # One dominant view plus small ones, a swap alias, duplicates: the
        # qualitative structure of MiniMD's census in the paper.
        big = rt.view("dominant", shape=(1000,))
        small = [rt.view(f"s{i}", shape=(10,)) for i in range(5)]
        swap = rt.view("dominant_swap", shape=(1000,))
        rt.declare_alias("dominant_swap", "dominant")
        dups = [big.subview(slice(None), label=f"dup{i}") for i in range(3)]
        census = rt.registry.census()
        assert len(census.checkpointed) == 6
        assert len(census.aliases) == 1
        assert len(census.skipped) == 3
        fracs = census.fractions_by_class()
        assert fracs["checkpointed"] + fracs["alias"] + fracs["skipped"] == pytest.approx(1.0)
        # the dominant view makes checkpointed the biggest single class
        assert fracs["checkpointed"] > 0.15

    def test_fractions_empty(self, rt):
        census = rt.registry.census([])
        assert census.fractions_by_class() == {
            "checkpointed": 0.0, "alias": 0.0, "skipped": 0.0,
        }

    def test_bytes_by_class_uses_modeled(self, rt):
        v = rt.view("modeled", shape=(2,), modeled_nbytes=1e6)
        census = rt.registry.census()
        assert census.bytes_by_class()["checkpointed"] == 1e6
