"""Tests for View and deep_copy."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.kokkos import KokkosRuntime, View, deep_copy
from repro.util.errors import ConfigError


@pytest.fixture
def rt():
    return KokkosRuntime()


class TestViewCreation:
    def test_zero_initialized(self, rt):
        v = rt.view("temps", shape=(4, 4))
        assert v.shape == (4, 4)
        assert np.all(v.data == 0.0)

    def test_from_existing_data(self, rt):
        arr = np.arange(6.0).reshape(2, 3)
        v = rt.view("arr", data=arr)
        assert np.array_equal(v.data, arr)

    def test_label_required(self):
        with pytest.raises(ConfigError):
            View("", shape=(2,))

    def test_shape_xor_data(self):
        with pytest.raises(ConfigError):
            View("x", shape=(2,), data=np.zeros(2))
        with pytest.raises(ConfigError):
            View("x")

    def test_dtype(self, rt):
        v = rt.view("ints", shape=(3,), dtype=np.int32)
        assert v.dtype == np.int32
        assert v.nbytes == 12.0

    def test_registered_on_creation(self, rt):
        v = rt.view("tracked", shape=(2,))
        assert v in list(rt.registry)


class TestViewSemantics:
    def test_indexing(self, rt):
        v = rt.view("grid", shape=(3, 3))
        v[1, 2] = 7.0
        assert v[1, 2] == 7.0
        assert v.data[1, 2] == 7.0

    def test_numpy_interop(self, rt):
        v = rt.view("vec", data=np.arange(5.0))
        assert np.sum(v) == 10.0
        assert np.array(v).shape == (5,)

    def test_fill(self, rt):
        v = rt.view("f", shape=(4,))
        v.fill(2.5)
        assert np.all(v.data == 2.5)

    def test_copy_and_load_roundtrip(self, rt):
        v = rt.view("state", data=np.arange(4.0))
        snap = v.copy_data()
        v.fill(0.0)
        v.load_data(snap)
        assert np.array_equal(v.data, np.arange(4.0))

    def test_load_shape_mismatch_rejected(self, rt):
        v = rt.view("s", shape=(4,))
        with pytest.raises(ConfigError):
            v.load_data(np.zeros(5))

    def test_snapshot_is_independent(self, rt):
        v = rt.view("snap", data=np.ones(3))
        snap = v.copy_data()
        v.fill(9.0)
        assert np.all(snap == 1.0)


class TestBufferIdentity:
    def test_distinct_views_distinct_buffers(self, rt):
        a = rt.view("a", shape=(4,))
        b = rt.view("b", shape=(4,))
        assert a.buffer_id() != b.buffer_id()

    def test_subview_shares_buffer(self, rt):
        a = rt.view("a", shape=(10,))
        sub = a.subview(slice(2, 6), label="a_mid")
        assert sub.buffer_id() == a.buffer_id()
        sub[0] = 5.0
        assert a[2] == 5.0

    def test_view_over_same_array_shares_buffer(self, rt):
        arr = np.zeros(8)
        a = rt.view("first", data=arr)
        b = rt.view("second", data=arr[::2])
        assert a.buffer_id() == b.buffer_id()

    def test_copyied_array_new_buffer(self, rt):
        arr = np.zeros(8)
        a = rt.view("first", data=arr)
        b = rt.view("copy", data=arr.copy())
        assert a.buffer_id() != b.buffer_id()


class TestModeledSize:
    def test_defaults_to_actual(self, rt):
        v = rt.view("v", shape=(100,))
        assert v.modeled_nbytes == v.nbytes == 800.0

    def test_override(self, rt):
        v = rt.view("big", shape=(10,), modeled_nbytes=1e9)
        assert v.nbytes == 80.0
        assert v.modeled_nbytes == 1e9

    def test_setter(self, rt):
        v = rt.view("x", shape=(2,))
        v.modeled_nbytes = 123.0
        assert v.modeled_nbytes == 123.0


class TestDeepCopy:
    def test_view_to_view(self, rt):
        src = rt.view("src", data=np.arange(4.0))
        dst = rt.view("dst", shape=(4,))
        deep_copy(dst, src)
        assert np.array_equal(dst.data, src.data)
        src[0] = 99.0
        assert dst[0] == 0.0  # deep, not aliased

    def test_scalar_broadcast(self, rt):
        dst = rt.view("dst", shape=(3, 3))
        deep_copy(dst, 4.0)
        assert np.all(dst.data == 4.0)

    def test_ndarray_source(self, rt):
        dst = rt.view("dst", shape=(3,))
        deep_copy(dst, np.array([1.0, 2.0, 3.0]))
        assert np.array_equal(dst.data, [1.0, 2.0, 3.0])

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False), min_size=1, max_size=32))
    def test_roundtrip_property(self, values):
        rt = KokkosRuntime()
        src = rt.view("src", data=np.array(values))
        dst = rt.view("dst", shape=(len(values),))
        deep_copy(dst, src)
        assert np.array_equal(dst.data, np.array(values))
