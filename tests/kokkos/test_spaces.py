"""Execution/memory space semantics."""

import numpy as np

from repro.kokkos import DeviceSpace, HostSpace, KokkosRuntime, deep_copy


class TestSpaces:
    def test_space_names_and_memory(self):
        assert HostSpace().memory_space == "host"
        assert DeviceSpace().memory_space == "device"

    def test_fence_is_safe(self):
        KokkosRuntime().fence()
        KokkosRuntime(space=DeviceSpace()).fence()

    def test_deep_copy_across_spaces(self):
        host_rt = KokkosRuntime()
        dev_rt = KokkosRuntime(space=DeviceSpace())
        h = host_rt.view("h", data=np.arange(4.0))
        d = dev_rt.view("d", shape=(4,))
        deep_copy(d, h)
        assert np.array_equal(d.data, np.arange(4.0))
        assert d.on_device and not h.on_device

    def test_registries_are_per_runtime(self):
        a, b = KokkosRuntime(), KokkosRuntime()
        a.view("x", shape=(1,))
        assert len(a.registry) == 1
        assert len(b.registry) == 0
