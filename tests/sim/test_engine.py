"""Unit tests for the discrete-event engine core."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import Engine, ProcessKilled
from repro.util.errors import DeadlockError, SimulationError


def run_collect(engine):
    engine.run()
    return engine.now


class TestClockAndOrdering:
    def test_time_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_single_timeout_advances_clock(self):
        eng = Engine()

        def proc():
            yield eng.timeout(2.5)

        eng.process(proc())
        assert run_collect(eng) == 2.5

    def test_fifo_for_simultaneous_events(self):
        eng = Engine()
        order = []

        def make(tag):
            def proc():
                yield eng.timeout(1.0)
                order.append(tag)

            return proc

        for tag in ("a", "b", "c"):
            eng.process(make(tag)())
        eng.run()
        assert order == ["a", "b", "c"]

    def test_events_fire_in_time_order(self):
        eng = Engine()
        order = []

        def proc(delay, tag):
            yield eng.timeout(delay)
            order.append((eng.now, tag))

        eng.process(proc(3.0, "late"))
        eng.process(proc(1.0, "early"))
        eng.process(proc(2.0, "mid"))
        eng.run()
        assert order == [(1.0, "early"), (2.0, "mid"), (3.0, "late")]

    def test_run_until_stops_clock(self):
        eng = Engine()

        def proc():
            yield eng.timeout(10.0)

        eng.process(proc())
        eng.run(until=4.0)
        assert eng.now == 4.0

    def test_negative_timeout_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.timeout(-1.0)

    @given(st.lists(st.floats(min_value=0.001, max_value=100.0), min_size=1, max_size=20))
    def test_completion_times_sorted(self, delays):
        eng = Engine()
        seen = []

        def proc(d):
            yield eng.timeout(d)
            seen.append(eng.now)

        for d in delays:
            eng.process(proc(d))
        eng.run()
        assert seen == sorted(seen)
        assert eng.now == pytest.approx(max(delays))


class TestProcessLifecycle:
    def test_return_value_via_join(self):
        eng = Engine()

        def child():
            yield eng.timeout(1.0)
            return 42

        results = []

        def parent():
            value = yield eng.process(child())
            results.append(value)

        eng.process(parent())
        eng.run()
        assert results == [42]

    def test_nested_yield_from(self):
        eng = Engine()

        def inner():
            yield eng.timeout(1.0)
            return "inner-done"

        def outer():
            value = yield from inner()
            assert value == "inner-done"
            yield eng.timeout(1.0)
            return "outer-done"

        proc = eng.process(outer())
        eng.run()
        assert proc.value == "outer-done"
        assert eng.now == 2.0

    def test_unhandled_process_exception_surfaces(self):
        eng = Engine()

        def bad():
            yield eng.timeout(1.0)
            raise ValueError("boom")

        eng.process(bad())
        with pytest.raises(SimulationError, match="boom"):
            eng.run()

    def test_exception_consumed_by_joiner_is_handled(self):
        eng = Engine()
        caught = []

        def bad():
            yield eng.timeout(1.0)
            raise ValueError("boom")

        child = eng.process(bad())

        def parent():
            try:
                yield child
            except ValueError as exc:
                caught.append(str(exc))

        eng.process(parent())
        eng.run()
        assert caught == ["boom"]
        # parent consumed the join, but engine-level record must be cleared
        assert eng.consume_failure(child) is not None or not eng.unhandled_failures

    def test_kill_blocked_process(self):
        eng = Engine()
        killed = []

        def victim():
            try:
                yield eng.timeout(100.0)
            except ProcessKilled:
                killed.append(eng.now)
                raise

        proc = eng.process(victim())

        def killer():
            yield eng.timeout(5.0)
            proc.kill()

        eng.process(killer())
        with pytest.raises(SimulationError):
            eng.run()
        assert killed == [5.0]
        assert not proc.alive

    def test_kill_finished_process_is_noop(self):
        eng = Engine()

        def quick():
            yield eng.timeout(1.0)
            return "ok"

        proc = eng.process(quick())
        eng.run()
        proc.kill()  # must not raise or re-trigger
        assert proc.value == "ok"

    def test_yielding_non_event_fails_process(self):
        eng = Engine()

        def bad():
            yield 42

        eng.process(bad())
        with pytest.raises(SimulationError, match="non-event"):
            eng.run()

    def test_non_generator_rejected(self):
        eng = Engine()
        with pytest.raises(TypeError):
            eng.process(lambda: None)


class TestEventsAndCombinators:
    def test_event_double_trigger_rejected(self):
        eng = Engine()
        ev = eng.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_requires_exception(self):
        eng = Engine()
        with pytest.raises(TypeError):
            eng.event().fail("not an exception")

    def test_late_subscription_still_fires(self):
        eng = Engine()
        ev = eng.event()
        ev.succeed("payload")
        got = []

        def late():
            yield eng.timeout(3.0)
            value = yield ev
            got.append((eng.now, value))

        eng.process(late())
        eng.run()
        assert got == [(3.0, "payload")]

    def test_all_of_waits_for_slowest(self):
        eng = Engine()
        results = []

        def proc():
            evs = [eng.timeout(1.0, "a"), eng.timeout(3.0, "b"), eng.timeout(2.0, "c")]
            values = yield eng.all_of(evs)
            results.append((eng.now, values))

        eng.process(proc())
        eng.run()
        assert results == [(3.0, ["a", "b", "c"])]

    def test_all_of_empty_succeeds_immediately(self):
        eng = Engine()
        done = []

        def proc():
            values = yield eng.all_of([])
            done.append(values)

        eng.process(proc())
        eng.run()
        assert done == [[]]

    def test_all_of_propagates_failure(self):
        eng = Engine()
        caught = []

        def proc():
            ok = eng.timeout(5.0)
            bad = eng.event()
            bad.fail(RuntimeError("child failed"), delay=1.0)
            try:
                yield eng.all_of([ok, bad])
            except RuntimeError as exc:
                caught.append(str(exc))

        eng.process(proc())
        eng.run()
        assert caught == ["child failed"]

    def test_any_of_returns_first(self):
        eng = Engine()
        results = []

        def proc():
            idx, value = yield eng.any_of(
                [eng.timeout(5.0, "slow"), eng.timeout(1.0, "fast")]
            )
            results.append((eng.now, idx, value))

        eng.process(proc())
        eng.run(until=10.0)
        assert results == [(1.0, 1, "fast")]

    def test_any_of_empty_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.any_of([])


class TestDeadlockDetection:
    def test_blocked_process_raises_deadlock(self):
        eng = Engine()

        def stuck():
            yield eng.event()  # never triggered

        eng.process(stuck(), name="stuck-proc")
        with pytest.raises(DeadlockError, match="stuck-proc"):
            eng.run()

    def test_daemon_process_exempt(self):
        eng = Engine()

        def idle():
            yield eng.event()

        eng.process(idle(), daemon=True)
        eng.run()  # must not raise

    def test_run_until_skips_deadlock_check(self):
        eng = Engine()

        def stuck():
            yield eng.event()

        eng.process(stuck())
        eng.run(until=1.0)  # bounded run: fine
