"""Engine edge cases: resumed runs, failure consumption, combinator order."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Engine
from repro.util.errors import SimulationError


class TestResumedRuns:
    def test_run_until_then_continue(self):
        eng = Engine()
        marks = []

        def proc():
            yield eng.timeout(1.0)
            marks.append(eng.now)
            yield eng.timeout(1.0)
            marks.append(eng.now)

        eng.process(proc())
        eng.run(until=1.5)
        assert marks == [1.0]
        eng.run()
        assert marks == [1.0, 2.0]

    def test_run_until_exact_boundary(self):
        eng = Engine()

        def proc():
            yield eng.timeout(2.0)

        eng.process(proc())
        eng.run(until=2.0)
        assert eng.now == 2.0


class TestFailureConsumption:
    def test_consume_failure_clears_record(self):
        eng = Engine()

        def bad():
            yield eng.timeout(1.0)
            raise ValueError("x")

        proc = eng.process(bad())
        try:
            eng.run()
        except SimulationError:
            pass
        # record remains until consumed
        assert eng.consume_failure(proc) is not None
        assert eng.consume_failure(proc) is None
        assert not eng.unhandled_failures


class TestCombinatorEdges:
    def test_anyof_failure_first_propagates(self):
        eng = Engine()
        caught = []

        def proc():
            bad = eng.event()
            bad.fail(RuntimeError("fast failure"), delay=0.5)
            slow = eng.timeout(5.0)
            try:
                yield eng.any_of([slow, bad])
            except RuntimeError as exc:
                caught.append(str(exc))

        eng.process(proc())
        eng.run(until=10.0)
        assert caught == ["fast failure"]

    def test_allof_preserves_input_order(self):
        eng = Engine()
        out = []

        def proc():
            values = yield eng.all_of(
                [eng.timeout(3.0, "slow"), eng.timeout(1.0, "fast")]
            )
            out.append(values)

        eng.process(proc())
        eng.run()
        assert out == [["slow", "fast"]]  # input order, not completion order

    def test_nested_combinators(self):
        eng = Engine()
        out = []

        def proc():
            inner = eng.all_of([eng.timeout(1.0, "a"), eng.timeout(2.0, "b")])
            idx, value = yield eng.any_of([eng.timeout(5.0), inner])
            out.append((idx, value, eng.now))

        eng.process(proc())
        eng.run(until=10.0)
        assert out == [(1, ["a", "b"], 2.0)]


class TestHypothesisWorkloads:
    @settings(max_examples=25, deadline=None)
    @given(
        tree=st.recursive(
            st.floats(min_value=0.01, max_value=5.0),
            lambda leaf: st.lists(leaf, min_size=1, max_size=3),
            max_leaves=12,
        )
    )
    def test_random_process_trees_complete(self, tree):
        """Spawning arbitrary trees of child processes always drains, the
        clock never regresses, and the final time is the critical path."""
        eng = Engine()
        observed = []

        def runner(node):
            if isinstance(node, float):
                yield eng.timeout(node)
                observed.append(eng.now)
                return node
            children = [eng.process(runner(child)) for child in node]
            durations = yield eng.all_of(children)
            observed.append(eng.now)
            return max(durations)

        root = eng.process(runner(tree))
        eng.run()
        assert observed == sorted(observed)

        def critical(node):
            if isinstance(node, float):
                return node
            return max(critical(c) for c in node)

        assert root.value == pytest.approx(critical(tree))
        assert eng.now == pytest.approx(critical(tree))
