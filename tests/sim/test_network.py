"""Unit tests for the cluster network model."""

import pytest

from repro.sim import Cluster, ClusterSpec, NetworkSpec, NodeSpec


def make_cluster(n_nodes=4, **net_kwargs):
    spec = ClusterSpec(
        n_nodes=n_nodes,
        node=NodeSpec(nic_bandwidth=100.0, nic_latency=0.0, memory_bandwidth=1000.0),
        network=NetworkSpec(fabric_latency=0.0, chunk_bytes=50.0, **net_kwargs),
    )
    return Cluster(spec)


class TestTransfer:
    def test_basic_transfer_time(self):
        cl = make_cluster()
        eng = cl.engine

        def mover():
            yield from cl.network.transfer(cl.node(0), cl.node(1), 100.0)

        eng.process(mover())
        eng.run()
        assert eng.now == pytest.approx(1.0)  # 100 bytes / 100 B/s

    def test_intra_node_uses_memcpy(self):
        cl = make_cluster()
        eng = cl.engine

        def mover():
            yield from cl.network.transfer(cl.node(0), cl.node(0), 100.0)

        eng.process(mover())
        eng.run()
        assert eng.now == pytest.approx(100.0 / 1000.0)

    def test_disjoint_pairs_parallel(self):
        cl = make_cluster()
        eng = cl.engine
        done = []

        def mover(src, dst):
            yield from cl.network.transfer(cl.node(src), cl.node(dst), 100.0)
            done.append(eng.now)

        eng.process(mover(0, 1))
        eng.process(mover(2, 3))
        eng.run()
        assert done == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_shared_sender_nic_serializes(self):
        cl = make_cluster()
        eng = cl.engine
        done = []

        def mover(dst):
            yield from cl.network.transfer(cl.node(0), cl.node(dst), 100.0)
            done.append(eng.now)

        eng.process(mover(1))
        eng.process(mover(2))
        eng.run()
        assert sorted(done) == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_shared_receiver_nic_serializes(self):
        cl = make_cluster()
        eng = cl.engine
        done = []

        def mover(src):
            yield from cl.network.transfer(cl.node(src), cl.node(3), 100.0)
            done.append(eng.now)

        eng.process(mover(0))
        eng.process(mover(1))
        eng.run()
        assert sorted(done) == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_opposite_directions_do_not_block(self):
        # a->b uses a.tx + b.rx; b->a uses b.tx + a.rx: fully parallel.
        cl = make_cluster()
        eng = cl.engine
        done = []

        def mover(src, dst):
            yield from cl.network.transfer(cl.node(src), cl.node(dst), 100.0)
            done.append(eng.now)

        eng.process(mover(0, 1))
        eng.process(mover(1, 0))
        eng.run()
        assert done == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_chunked_transfer_allows_interleaving(self):
        cl = make_cluster()
        eng = cl.engine
        small_done = []

        def bulk():
            # 500 bytes, chunk=50 -> 10 chunks of 0.5 s each
            yield from cl.network.transfer(cl.node(0), cl.node(1), 500.0, chunked=True)

        def small():
            yield eng.timeout(0.1)  # arrive mid-bulk
            yield from cl.network.transfer(cl.node(0), cl.node(2), 10.0)
            small_done.append(eng.now)

        eng.process(bulk())
        eng.process(small())
        eng.run()
        # Small message waits only for the current chunk (ends 0.5), then
        # 0.1s of its own service -> ~0.6, far less than the full 5s bulk.
        assert small_done[0] < 1.0

    def test_unchunked_transfer_blocks(self):
        cl = make_cluster()
        eng = cl.engine
        small_done = []

        def bulk():
            yield from cl.network.transfer(cl.node(0), cl.node(1), 500.0)

        def small():
            yield eng.timeout(0.1)
            yield from cl.network.transfer(cl.node(0), cl.node(2), 10.0)
            small_done.append(eng.now)

        eng.process(bulk())
        eng.process(small())
        eng.run()
        assert small_done[0] >= 5.0

    def test_many_crossing_transfers_no_deadlock(self):
        cl = make_cluster(n_nodes=6)
        eng = cl.engine
        count = []

        def mover(src, dst):
            yield from cl.network.transfer(cl.node(src), cl.node(dst), 30.0)
            count.append(1)

        pairs = [(i, j) for i in range(6) for j in range(6) if i != j]
        for src, dst in pairs:
            eng.process(mover(src, dst))
        eng.run()
        assert len(count) == len(pairs)

    def test_estimate_matches_uncontended(self):
        cl = make_cluster()
        eng = cl.engine
        est = cl.network.estimate_time(cl.node(0), cl.node(1), 100.0)

        def mover():
            yield from cl.network.transfer(cl.node(0), cl.node(1), 100.0)

        eng.process(mover())
        eng.run()
        assert eng.now == pytest.approx(est)

    def test_traffic_counters(self):
        cl = make_cluster()
        eng = cl.engine

        def mover():
            yield from cl.network.transfer(cl.node(0), cl.node(1), 100.0)
            yield from cl.network.transfer(cl.node(1), cl.node(2), 50.0)

        eng.process(mover())
        eng.run()
        assert cl.network.messages_sent == 2
        assert cl.network.bytes_sent == 150.0
