"""Unit tests for Resource, Store and BandwidthPipe."""

import pytest

from repro.sim import Engine
from repro.sim.resources import BandwidthPipe, Resource, Store
from repro.util.errors import SimulationError


class TestResource:
    def test_capacity_validation(self):
        with pytest.raises(SimulationError):
            Resource(Engine(), capacity=0)

    def test_serializes_beyond_capacity(self):
        eng = Engine()
        res = Resource(eng, capacity=2)
        spans = {}

        def worker(tag):
            yield res.request()
            start = eng.now
            yield eng.timeout(1.0)
            res.release()
            spans[tag] = (start, eng.now)

        for tag in range(4):
            eng.process(worker(tag))
        eng.run()
        # two run at t=0..1, the next two at t=1..2
        starts = sorted(s for s, _ in spans.values())
        assert starts == [0.0, 0.0, 1.0, 1.0]

    def test_fifo_grant_order(self):
        eng = Engine()
        res = Resource(eng, capacity=1)
        order = []

        def worker(tag):
            yield res.request()
            order.append(tag)
            yield eng.timeout(1.0)
            res.release()

        for tag in range(5):
            eng.process(worker(tag))
        eng.run()
        assert order == list(range(5))

    def test_release_without_acquire_rejected(self):
        eng = Engine()
        res = Resource(eng, capacity=1)
        with pytest.raises(SimulationError):
            res.release()

    def test_counters(self):
        eng = Engine()
        res = Resource(eng, capacity=1)

        def holder():
            yield res.request()
            assert res.in_use == 1
            yield eng.timeout(1.0)
            res.release()

        def waiter():
            ev = res.request()
            assert res.queue_length == 1
            yield ev
            res.release()

        eng.process(holder())
        eng.process(waiter())
        eng.run()
        assert res.in_use == 0
        assert res.queue_length == 0


class TestStore:
    def test_put_then_get(self):
        eng = Engine()
        store = Store(eng)
        got = []

        def consumer():
            item = yield from store.get()
            got.append(item)

        store.put("x")
        eng.process(consumer())
        eng.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self):
        eng = Engine()
        store = Store(eng)
        got = []

        def consumer():
            item = yield from store.get()
            got.append((eng.now, item))

        def producer():
            yield eng.timeout(3.0)
            store.put("late")

        eng.process(consumer())
        eng.process(producer())
        eng.run()
        assert got == [(3.0, "late")]

    def test_fifo_ordering_items_and_getters(self):
        eng = Engine()
        store = Store(eng)
        got = []

        def consumer(tag):
            item = yield from store.get()
            got.append((tag, item))

        eng.process(consumer("first"))
        eng.process(consumer("second"))

        def producer():
            yield eng.timeout(1.0)
            store.put(1)
            store.put(2)

        eng.process(producer())
        eng.run()
        assert got == [("first", 1), ("second", 2)]

    def test_drain(self):
        eng = Engine()
        store = Store(eng)
        store.put(1)
        store.put(2)
        assert store.drain() == [1, 2]
        assert len(store) == 0

    def test_fail_waiters(self):
        eng = Engine()
        store = Store(eng)
        caught = []

        def consumer():
            try:
                yield from store.get()
            except RuntimeError as exc:
                caught.append(str(exc))

        eng.process(consumer())

        def killer():
            yield eng.timeout(1.0)
            store.fail_waiters(RuntimeError("shutdown"))

        eng.process(killer())
        eng.run()
        assert caught == ["shutdown"]


class TestBandwidthPipe:
    def test_transfer_time_formula(self):
        pipe = BandwidthPipe(Engine(), bandwidth=100.0, latency=0.5)
        assert pipe.transfer_time(200.0) == pytest.approx(0.5 + 2.0)

    def test_transfers_serialize(self):
        eng = Engine()
        pipe = BandwidthPipe(eng, bandwidth=100.0, latency=0.0)
        done = []

        def mover(tag):
            yield from pipe.transfer(100.0)  # 1 second each
            done.append((tag, eng.now))

        eng.process(mover("a"))
        eng.process(mover("b"))
        eng.run()
        assert done == [("a", 1.0), ("b", 2.0)]

    def test_byte_accounting(self):
        eng = Engine()
        pipe = BandwidthPipe(eng, bandwidth=10.0)

        def mover():
            yield from pipe.transfer(5.0)

        eng.process(mover())
        eng.run()
        assert pipe.bytes_moved == 5.0
        assert pipe.busy_time == pytest.approx(0.5)

    def test_utilization(self):
        eng = Engine()
        pipe = BandwidthPipe(eng, bandwidth=10.0)

        def mover():
            yield from pipe.transfer(10.0)  # busy 1s
            yield eng.timeout(1.0)  # idle 1s

        eng.process(mover())
        eng.run()
        assert pipe.utilization() == pytest.approx(0.5)

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            BandwidthPipe(Engine(), bandwidth=0.0)
        with pytest.raises(SimulationError):
            BandwidthPipe(Engine(), bandwidth=1.0, latency=-1.0)

    def test_negative_transfer_rejected(self):
        eng = Engine()
        pipe = BandwidthPipe(eng, bandwidth=1.0)

        def mover():
            yield from pipe.transfer(-1.0)

        eng.process(mover())
        with pytest.raises(SimulationError):
            eng.run()
