"""Semantics of the engine hot-path optimizations.

The speedups (Timeout pooling, O(1) consume_failure, lazy deadlock
formatting, localized run loop) must be invisible: these tests pin the
behaviors a recycled object could silently corrupt.
"""

import pytest

from repro.sim import Engine, Timeout
from repro.util.errors import DeadlockError, SimulationError


class TestTimeoutPooling:
    def test_processed_timeouts_are_recycled(self):
        eng = Engine()
        seen = []

        def ticker():
            for _ in range(10):
                ev = eng.timeout(1.0)
                seen.append(id(ev))
                yield ev

        eng.process(ticker())
        eng.run()
        # steady state reuses instances instead of allocating 10
        assert len(set(seen)) < len(seen)
        assert eng._timeout_pool  # survivors parked for the next run

    def test_pool_is_bounded(self):
        eng = Engine()

        def burst():
            # schedule far more simultaneous timers than the pool cap
            yield eng.all_of([eng.timeout(1.0) for _ in range(600)])

        eng.process(burst())
        eng.run()
        assert len(eng._timeout_pool) <= Engine._POOL_MAX

    def test_values_survive_combinators(self):
        """AllOf reads child values after dispatch: children are pinned."""
        eng = Engine()
        out = []

        def proc():
            values = yield eng.all_of(
                [eng.timeout(1.0, "a"), eng.timeout(2.0, "b")]
            )
            # interleave more timeouts, then check nothing was clobbered
            yield eng.timeout(1.0)
            out.append(values)

        eng.process(proc())
        eng.run()
        assert out == [["a", "b"]]

    def test_recycled_timeout_carries_new_value(self):
        eng = Engine()
        got = []

        def proc():
            first = eng.timeout(1.0, "one")
            got.append((yield first))
            second = eng.timeout(1.0, "two")
            got.append((yield second))

        eng.process(proc())
        eng.run()
        assert got == ["one", "two"]

    def test_direct_construction_is_not_pooled(self):
        eng = Engine()
        held = Timeout(eng, 1.0, "kept")

        def proc():
            yield held
            yield eng.timeout(1.0)

        eng.process(proc())
        eng.run()
        # a directly-constructed Timeout keeps its state after the run
        assert held.processed and held.value == "kept"
        assert held not in eng._timeout_pool

    def test_negative_delay_rejected_on_pooled_path(self):
        eng = Engine()

        def proc():
            yield eng.timeout(1.0)
            eng.timeout(-0.5)

        eng.process(proc())
        with pytest.raises(SimulationError, match="negative|boom"):
            eng.run()


class TestFailureBookkeeping:
    def test_consume_failure_is_keyed_by_process(self):
        eng = Engine()

        def bad(tag):
            yield eng.timeout(1.0)
            raise ValueError(tag)

        procs = [eng.process(bad(f"p{i}"), name=f"p{i}") for i in range(3)]
        with pytest.raises(SimulationError, match="p0"):
            eng.run()  # oldest unconsumed failure is still the one raised
        # consume out of order; each pop returns that process's error
        assert "p1" in str(eng.consume_failure(procs[1]))
        assert "p0" in str(eng.consume_failure(procs[0]))
        assert eng.consume_failure(procs[0]) is None
        assert [p.name for p, _ in eng.unhandled_failures] == ["p2"]


class TestLazyDeadlock:
    def test_blocked_detail_available_structurally(self):
        eng = Engine()

        def stuck():
            yield eng.event(name="never")

        eng.process(stuck(), name="stuck-proc")
        with pytest.raises(DeadlockError) as exc_info:
            eng.run()
        assert exc_info.value.blocked == [("stuck-proc", "never")]
        assert "stuck-proc" in str(exc_info.value)
        assert "never" in str(exc_info.value)

    def test_plain_message_still_renders(self):
        assert str(DeadlockError("plain")) == "plain"


class TestRunLoop:
    def test_until_with_empty_heap_keeps_last_event_time(self):
        eng = Engine()

        def proc():
            yield eng.timeout(3.0)

        eng.process(proc())
        assert eng.run(until=10.0) == 3.0

    def test_until_pauses_and_resumes(self):
        eng = Engine()
        ticks = []

        def proc():
            for _ in range(4):
                yield eng.timeout(1.0)
                ticks.append(eng.now)

        eng.process(proc())
        eng.run(until=2.5)
        assert ticks == [1.0, 2.0] and eng.now == 2.5
        eng.run()
        assert ticks == [1.0, 2.0, 3.0, 4.0]
