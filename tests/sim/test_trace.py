"""Trace recording tests."""

import pytest

from repro.sim import Trace
from repro.util.errors import ConfigError


def make_trace():
    tr = Trace()
    tr.emit(0.0, "fenix", "detect", rank=1)
    tr.emit(1.0, "veloc.rank0", "checkpoint", version=0, nbytes=100.0)
    tr.emit(2.0, "veloc.rank0", "checkpoint", version=1, nbytes=100.0)
    tr.emit(3.0, "fenix", "repair", generation=1)
    return tr


class TestTrace:
    def test_emit_and_len(self):
        assert len(make_trace()) == 4

    def test_filter_by_kind(self):
        tr = make_trace()
        assert len(tr.records(kind="checkpoint")) == 2

    def test_filter_by_source(self):
        tr = make_trace()
        assert len(tr.records(source="fenix")) == 2

    def test_predicate(self):
        tr = make_trace()
        late = tr.records(predicate=lambda r: r.time >= 2.0)
        assert len(late) == 2

    def test_first_last_count(self):
        tr = make_trace()
        assert tr.first("checkpoint")["version"] == 0
        assert tr.last("checkpoint")["version"] == 1
        assert tr.count("checkpoint") == 2
        assert tr.first("missing") is None
        assert tr.last("missing") is None

    def test_disabled_records_nothing(self):
        tr = Trace(enabled=False)
        tr.emit(0.0, "x", "y")
        assert len(tr) == 0

    def test_clear(self):
        tr = make_trace()
        tr.clear()
        assert len(tr) == 0

    def test_field_access(self):
        tr = make_trace()
        rec = tr.first("detect")
        assert rec["rank"] == 1
        assert rec.fields == {"rank": 1}


class TestRingBuffer:
    def test_unbounded_by_default(self):
        tr = Trace()
        for i in range(1000):
            tr.emit(float(i), "s", "k", i=i)
        assert len(tr) == 1000
        assert tr.dropped == 0

    def test_bounded_keeps_newest(self):
        tr = Trace(max_records=3)
        for i in range(10):
            tr.emit(float(i), "s", "k", i=i)
        assert len(tr) == 3
        assert [rec["i"] for rec in tr] == [7, 8, 9]

    def test_dropped_counter(self):
        tr = Trace(max_records=3)
        for i in range(10):
            tr.emit(float(i), "s", "k", i=i)
        assert tr.dropped == 7

    def test_no_drops_under_capacity(self):
        tr = Trace(max_records=5)
        tr.emit(0.0, "s", "k")
        tr.emit(1.0, "s", "k")
        assert tr.dropped == 0
        assert len(tr) == 2

    def test_clear_resets_dropped(self):
        tr = Trace(max_records=1)
        tr.emit(0.0, "s", "k")
        tr.emit(1.0, "s", "k")
        assert tr.dropped == 1
        tr.clear()
        assert tr.dropped == 0
        assert len(tr) == 0

    def test_disabled_bounded_trace_records_nothing(self):
        tr = Trace(enabled=False, max_records=2)
        for i in range(5):
            tr.emit(float(i), "s", "k")
        assert len(tr) == 0
        assert tr.dropped == 0

    def test_invalid_max_records(self):
        with pytest.raises(ConfigError):
            Trace(max_records=0)
        with pytest.raises(ConfigError):
            Trace(max_records=-5)

    def test_queries_see_only_retained(self):
        tr = Trace(max_records=2)
        tr.emit(0.0, "s", "old")
        tr.emit(1.0, "s", "new")
        tr.emit(2.0, "s", "newer")
        assert tr.first("old") is None
        assert tr.count("new") == 1
        assert tr.last("newer") is not None
