"""Trace recording tests."""

import pytest

from repro.sim import Trace
from repro.util.errors import ConfigError


def make_trace():
    tr = Trace()
    tr.emit(0.0, "fenix", "detect", rank=1)
    tr.emit(1.0, "veloc.rank0", "checkpoint", version=0, nbytes=100.0)
    tr.emit(2.0, "veloc.rank0", "checkpoint", version=1, nbytes=100.0)
    tr.emit(3.0, "fenix", "repair", generation=1)
    return tr


class TestTrace:
    def test_emit_and_len(self):
        assert len(make_trace()) == 4

    def test_filter_by_kind(self):
        tr = make_trace()
        assert len(tr.records(kind="checkpoint")) == 2

    def test_filter_by_source(self):
        tr = make_trace()
        assert len(tr.records(source="fenix")) == 2

    def test_predicate(self):
        tr = make_trace()
        late = tr.records(predicate=lambda r: r.time >= 2.0)
        assert len(late) == 2

    def test_first_last_count(self):
        tr = make_trace()
        assert tr.first("checkpoint")["version"] == 0
        assert tr.last("checkpoint")["version"] == 1
        assert tr.count("checkpoint") == 2
        assert tr.first("missing") is None
        assert tr.last("missing") is None

    def test_disabled_records_nothing(self):
        tr = Trace(enabled=False)
        tr.emit(0.0, "x", "y")
        assert len(tr) == 0

    def test_clear(self):
        tr = make_trace()
        tr.clear()
        assert len(tr) == 0

    def test_field_access(self):
        tr = make_trace()
        rec = tr.first("detect")
        assert rec["rank"] == 1
        assert rec.fields == {"rank": 1}


class TestRingBuffer:
    def test_unbounded_by_default(self):
        tr = Trace()
        for i in range(1000):
            tr.emit(float(i), "s", "k", i=i)
        assert len(tr) == 1000
        assert tr.dropped == 0

    def test_bounded_keeps_newest(self):
        tr = Trace(max_records=3)
        for i in range(10):
            tr.emit(float(i), "s", "k", i=i)
        assert len(tr) == 3
        assert [rec["i"] for rec in tr] == [7, 8, 9]

    def test_dropped_counter(self):
        tr = Trace(max_records=3)
        for i in range(10):
            tr.emit(float(i), "s", "k", i=i)
        assert tr.dropped == 7

    def test_no_drops_under_capacity(self):
        tr = Trace(max_records=5)
        tr.emit(0.0, "s", "k")
        tr.emit(1.0, "s", "k")
        assert tr.dropped == 0
        assert len(tr) == 2

    def test_clear_resets_dropped(self):
        tr = Trace(max_records=1)
        tr.emit(0.0, "s", "k")
        tr.emit(1.0, "s", "k")
        assert tr.dropped == 1
        tr.clear()
        assert tr.dropped == 0
        assert len(tr) == 0

    def test_disabled_bounded_trace_records_nothing(self):
        tr = Trace(enabled=False, max_records=2)
        for i in range(5):
            tr.emit(float(i), "s", "k")
        assert len(tr) == 0
        assert tr.dropped == 0

    def test_invalid_max_records(self):
        with pytest.raises(ConfigError):
            Trace(max_records=0)
        with pytest.raises(ConfigError):
            Trace(max_records=-5)

    def test_queries_see_only_retained(self):
        tr = Trace(max_records=2)
        tr.emit(0.0, "s", "old")
        tr.emit(1.0, "s", "new")
        tr.emit(2.0, "s", "newer")
        assert tr.first("old") is None
        assert tr.count("new") == 1
        assert tr.last("newer") is not None

    def test_dropped_window_bounds(self):
        tr = Trace(max_records=2)
        assert tr.dropped_window is None
        for i in range(5):
            tr.emit(float(i), "s", "k")
        # records at t=0,1,2 were evicted
        assert tr.dropped == 3
        assert tr.dropped_window == (0.0, 2.0)
        tr.clear()
        assert tr.dropped_window is None


class TestSubscription:
    def test_listener_sees_each_record(self):
        tr = Trace()
        seen = []
        tr.subscribe(seen.append)
        tr.emit(0.0, "s", "a")
        tr.emit(1.0, "s", "b")
        assert [r.kind for r in seen] == ["a", "b"]

    def test_unsubscribe_stops_delivery(self):
        tr = Trace()
        seen = []
        tr.subscribe(seen.append)
        tr.emit(0.0, "s", "a")
        tr.unsubscribe(seen.append)
        tr.emit(1.0, "s", "b")
        assert [r.kind for r in seen] == ["a"]

    def test_listener_receives_stored_record(self):
        """The delivered object is the stored record (seq assigned)."""
        tr = Trace()
        seen = []
        tr.subscribe(seen.append)
        rec = tr.emit(0.0, "s", "a")
        assert seen[0] is rec
        assert seen[0].seq == 1

    def test_disabled_trace_notifies_nobody(self):
        tr = Trace(enabled=False)
        seen = []
        tr.subscribe(seen.append)
        tr.emit(0.0, "s", "a")
        assert seen == []


class TestSeqAndBrief:
    def test_seq_is_monotonic_across_eviction(self):
        tr = Trace(max_records=3)
        for i in range(7):
            tr.emit(float(i), "s", "k")
        assert [r.seq for r in tr] == [5, 6, 7]

    def test_brief(self):
        tr = Trace()
        rec = tr.emit(1.5, "fenix", "repair", generation=2)
        text = rec.brief()
        assert "#1" in text
        assert "t=1.5" in text
        assert "fenix" in text and "repair" in text
        assert "generation=2" in text


class TestKindIndex:
    def test_kinds_enumerates_live_kinds(self):
        tr = make_trace()
        assert set(tr.kinds()) == {"detect", "checkpoint", "repair"}

    def test_index_matches_scan_after_eviction(self):
        tr = Trace(max_records=10)
        for i in range(50):
            tr.emit(float(i), "s", "even" if i % 2 == 0 else "odd")
        for kind in ("even", "odd"):
            scan = [r for r in tr if r.kind == kind]
            assert tr.records(kind=kind) == scan
            assert tr.count(kind) == len(scan)
            assert tr.first(kind) is (scan[0] if scan else None)
            assert tr.last(kind) is (scan[-1] if scan else None)

    def test_fully_evicted_kind_disappears(self):
        tr = Trace(max_records=2)
        tr.emit(0.0, "s", "early")
        tr.emit(1.0, "s", "late")
        tr.emit(2.0, "s", "late")
        assert "early" not in tr.kinds()
        assert tr.count("early") == 0

    def test_indexed_queries_beat_full_scan(self):
        """Perf smoke for the per-kind index: first/last/count of a rare
        kind must not scale with total trace size (BENCH guards the
        absolute numbers; this is the tier-1 sanity check)."""
        import time

        tr = Trace()
        for i in range(20000):
            tr.emit(float(i), "s", f"bulk{i % 7}")
        tr.emit(99999.0, "fenix", "repair", generation=1)

        t0 = time.perf_counter()
        for _ in range(2000):
            tr.count("repair")
            tr.first("repair")
            tr.last("repair")
        indexed = time.perf_counter() - t0

        t0 = time.perf_counter()
        for _ in range(20):
            sum(1 for r in tr if r.kind == "repair")
        scan = (time.perf_counter() - t0) / 20

        # 2000 indexed lookups must cost far less than 2000 scans would;
        # generous 100x headroom keeps this robust on loaded CI hosts
        assert indexed < 2000 * scan / 100
