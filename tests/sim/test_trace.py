"""Trace recording tests."""

from repro.sim import Trace


def make_trace():
    tr = Trace()
    tr.emit(0.0, "fenix", "detect", rank=1)
    tr.emit(1.0, "veloc.rank0", "checkpoint", version=0, nbytes=100.0)
    tr.emit(2.0, "veloc.rank0", "checkpoint", version=1, nbytes=100.0)
    tr.emit(3.0, "fenix", "repair", generation=1)
    return tr


class TestTrace:
    def test_emit_and_len(self):
        assert len(make_trace()) == 4

    def test_filter_by_kind(self):
        tr = make_trace()
        assert len(tr.records(kind="checkpoint")) == 2

    def test_filter_by_source(self):
        tr = make_trace()
        assert len(tr.records(source="fenix")) == 2

    def test_predicate(self):
        tr = make_trace()
        late = tr.records(predicate=lambda r: r.time >= 2.0)
        assert len(late) == 2

    def test_first_last_count(self):
        tr = make_trace()
        assert tr.first("checkpoint")["version"] == 0
        assert tr.last("checkpoint")["version"] == 1
        assert tr.count("checkpoint") == 2
        assert tr.first("missing") is None
        assert tr.last("missing") is None

    def test_disabled_records_nothing(self):
        tr = Trace(enabled=False)
        tr.emit(0.0, "x", "y")
        assert len(tr) == 0

    def test_clear(self):
        tr = make_trace()
        tr.clear()
        assert len(tr) == 0

    def test_field_access(self):
        tr = make_trace()
        rec = tr.first("detect")
        assert rec["rank"] == 1
        assert rec.fields == {"rank": 1}
