"""Unit tests for the parallel filesystem model."""

import numpy as np
import pytest

from repro.sim import Cluster, ClusterSpec, NetworkSpec, NodeSpec, PFSSpec
from repro.util.errors import ConfigError


def make_cluster(n_nodes=8, n_servers=2, server_bw=50.0, chunk=100.0):
    spec = ClusterSpec(
        n_nodes=n_nodes,
        node=NodeSpec(nic_bandwidth=1000.0, nic_latency=0.0, memory_bandwidth=1e6),
        network=NetworkSpec(fabric_latency=0.0),
        pfs=PFSSpec(
            n_servers=n_servers,
            server_bandwidth=server_bw,
            server_latency=0.0,
            chunk_bytes=chunk,
        ),
    )
    return Cluster(spec)


class TestDataPlane:
    def test_write_then_read_roundtrip(self):
        cl = make_cluster()
        eng = cl.engine
        payload = np.arange(10.0)
        got = []

        def writer():
            yield from cl.pfs.write("ckpt/0", payload, 100.0, cl.node(0))
            data = yield from cl.pfs.read("ckpt/0", cl.node(1))
            got.append(data)

        eng.process(writer())
        eng.run()
        assert np.array_equal(got[0], payload)

    def test_exists_delete_wipe(self):
        cl = make_cluster()
        eng = cl.engine

        def writer():
            yield from cl.pfs.write("a", 1, 10.0, cl.node(0))
            yield from cl.pfs.write("b", 2, 10.0, cl.node(0))

        eng.process(writer())
        eng.run()
        assert cl.pfs.exists("a") and cl.pfs.exists("b")
        cl.pfs.delete("a")
        assert not cl.pfs.exists("a")
        cl.pfs.wipe()
        assert not cl.pfs.exists("b")

    def test_read_missing_key_raises(self):
        cl = make_cluster()
        eng = cl.engine

        def reader():
            yield from cl.pfs.read("nope", cl.node(0))

        eng.process(reader())
        with pytest.raises(Exception):
            eng.run()

    def test_data_survives_scratch_wipe(self):
        # PFS contents persist across simulated job relaunches.
        cl = make_cluster()
        eng = cl.engine

        def writer():
            yield from cl.pfs.write("persist", "data", 10.0, cl.node(0))

        eng.process(writer())
        eng.run()
        cl.wipe_scratch()
        assert cl.pfs.peek("persist") == "data"


class TestContention:
    def test_write_time_single_writer(self):
        cl = make_cluster(n_servers=1, server_bw=50.0, chunk=1000.0)
        eng = cl.engine

        def writer():
            yield from cl.pfs.write("k", None, 100.0, cl.node(0))

        eng.process(writer())
        eng.run()
        assert eng.now == pytest.approx(2.0)  # 100 B / 50 B/s

    def test_servers_bottleneck_many_writers(self):
        # 8 writers x 100B through 2 servers at 50 B/s each:
        # aggregate 100 B/s -> total 800B takes ~8s even though NICs could
        # do it in 0.1s. This is the Lustre bottleneck of Figure 5.
        cl = make_cluster(n_nodes=8, n_servers=2, server_bw=50.0, chunk=100.0)
        eng = cl.engine

        def writer(i):
            yield from cl.pfs.write(f"k{i}", None, 100.0, cl.node(i))

        for i in range(8):
            eng.process(writer(i))
        eng.run()
        assert eng.now == pytest.approx(8.0, rel=0.01)

    def test_more_servers_scale_throughput(self):
        def total_time(n_servers):
            cl = make_cluster(n_nodes=8, n_servers=n_servers, server_bw=50.0)
            eng = cl.engine

            def writer(i):
                yield from cl.pfs.write(f"k{i}", None, 100.0, cl.node(i))

            for i in range(8):
                eng.process(writer(i))
            eng.run()
            return eng.now

        assert total_time(4) < total_time(2) < total_time(1)

    def test_writes_occupy_writer_nic(self):
        # While flushing to PFS the writer's TX pipe is busy, delaying its
        # own outgoing messages -- the checkpoint congestion effect.
        cl = make_cluster(n_nodes=4, n_servers=1, server_bw=50.0, chunk=1000.0)
        eng = cl.engine
        msg_done = []

        def flusher():
            yield from cl.pfs.write("big", None, 100.0, cl.node(0))  # 2s

        def sender():
            yield eng.timeout(0.1)
            yield from cl.network.transfer(cl.node(0), cl.node(1), 10.0)
            msg_done.append(eng.now)

        eng.process(flusher())
        eng.process(sender())
        eng.run()
        assert msg_done[0] >= 2.0

    def test_byte_counters(self):
        cl = make_cluster()
        eng = cl.engine

        def writer():
            yield from cl.pfs.write("k", "v", 250.0, cl.node(0))
            yield from cl.pfs.read("k", cl.node(1))

        eng.process(writer())
        eng.run()
        assert cl.pfs.bytes_written == 250.0
        assert cl.pfs.bytes_read == 250.0


class TestSpecValidation:
    def test_bad_specs_rejected(self):
        with pytest.raises(ConfigError):
            PFSSpec(n_servers=0)
        with pytest.raises(ConfigError):
            PFSSpec(server_bandwidth=0)
        with pytest.raises(ConfigError):
            PFSSpec(chunk_bytes=0)

    def test_aggregate_bandwidth(self):
        spec = PFSSpec(n_servers=4, server_bandwidth=10.0)
        assert spec.aggregate_bandwidth == 40.0
