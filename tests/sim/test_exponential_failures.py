"""ExponentialFailures plan tests."""

import numpy as np
import pytest

from repro.sim import Engine, ExponentialFailures
from repro.sim.failures import RankKilledError
from repro.util.errors import ConfigError


def run_victims(plan, n_ranks, run_for):
    """Arm ranks that idle for `run_for`; returns the set killed."""
    eng = Engine()
    killed = []

    def rank(r):
        try:
            yield eng.timeout(run_for)
        except RankKilledError:
            killed.append(r)

    for r in range(n_ranks):
        proc = eng.process(rank(r), name=f"rank{r}")
        plan.arm(eng, r, proc)
    eng.run()
    return killed


class TestExponentialFailures:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ExponentialFailures(0.0)

    def test_deterministic_given_seed(self):
        a = run_victims(ExponentialFailures(5.0, seed=3), 8, run_for=20.0)
        b = run_victims(ExponentialFailures(5.0, seed=3), 8, run_for=20.0)
        assert a == b

    def test_max_failures_cap(self):
        plan = ExponentialFailures(0.1, seed=1, max_failures=2)
        killed = run_victims(plan, 10, run_for=100.0)
        assert len(killed) == 2
        assert plan.fired == 2

    def test_short_mtbf_kills_most(self):
        killed = run_victims(ExponentialFailures(1.0, seed=5), 10, run_for=50.0)
        assert len(killed) >= 8  # P(survive 50 MTBFs) ~ 0

    def test_long_mtbf_kills_few(self):
        killed = run_victims(ExponentialFailures(1e6, seed=5), 10, run_for=1.0)
        assert len(killed) == 0

    def test_victims_filter(self):
        plan = ExponentialFailures(0.01, seed=2, victims={3})
        killed = run_victims(plan, 6, run_for=10.0)
        assert killed == [3]

    def test_finished_process_not_killed(self):
        eng = Engine()
        plan = ExponentialFailures(0.5, seed=0)

        def quick():
            yield eng.timeout(1e-6)
            return "done"

        proc = eng.process(quick())
        plan.arm(eng, 0, proc)
        eng.run()
        assert proc.value == "done"

    def test_reset_preserves_budget(self):
        plan = ExponentialFailures(0.1, seed=1, max_failures=1)
        run_victims(plan, 4, run_for=50.0)
        assert plan.fired == 1
        plan.reset()
        killed = run_victims(plan, 4, run_for=50.0)
        assert killed == []  # the campaign budget is spent
