"""Unit tests for failure-injection plans."""

import pytest

from repro.sim import Engine, IterationFailure, NoFailures, TimedFailure
from repro.sim.failures import RankKilledError


class TestNoFailures:
    def test_never_fires(self):
        plan = NoFailures()
        for it in range(100):
            plan.check(rank=0, iteration=it)
        assert plan.expected_failures() == 0


class TestIterationFailure:
    def test_fires_exactly_once(self):
        plan = IterationFailure([(2, 10)])
        plan.check(rank=2, iteration=9)
        with pytest.raises(RankKilledError) as exc_info:
            plan.check(rank=2, iteration=10)
        assert exc_info.value.rank == 2
        # second pass through the same iteration (post-recovery) is safe
        plan.check(rank=2, iteration=10)

    def test_other_ranks_unaffected(self):
        plan = IterationFailure([(2, 10)])
        plan.check(rank=0, iteration=10)
        plan.check(rank=3, iteration=10)

    def test_between_checkpoints_rule(self):
        # checkpoint every 20 iters; fail 95% of the way after ckpt #4
        plan = IterationFailure.between_checkpoints(
            rank=1, checkpoint_interval=20, after_checkpoint=4, fraction=0.95
        )
        ((rank, iteration),) = plan.pending
        assert rank == 1
        assert iteration == 80 + 19  # 4*20 + round(0.95*20)

    def test_multiple_kills(self):
        plan = IterationFailure([(0, 5), (1, 8)])
        assert plan.expected_failures() == 2
        with pytest.raises(RankKilledError):
            plan.check(0, 5)
        with pytest.raises(RankKilledError):
            plan.check(1, 8)
        assert plan.pending == set()

    def test_reset_reenables(self):
        plan = IterationFailure([(0, 5)])
        with pytest.raises(RankKilledError):
            plan.check(0, 5)
        plan.reset()
        with pytest.raises(RankKilledError):
            plan.check(0, 5)


class TestTimedFailure:
    def test_kills_at_time(self):
        eng = Engine()
        plan = TimedFailure([(0, 5.0)])
        observed = []

        def rank0():
            try:
                yield eng.timeout(100.0)
            except RankKilledError:
                observed.append(eng.now)
                return  # swallow: simulated death handled

        proc = eng.process(rank0(), name="rank0")
        plan.arm(eng, 0, proc)
        eng.run()
        assert observed == [5.0]

    def test_does_not_kill_finished_process(self):
        eng = Engine()
        plan = TimedFailure([(0, 5.0)])

        def rank0():
            yield eng.timeout(1.0)
            return "done"

        proc = eng.process(rank0(), name="rank0")
        plan.arm(eng, 0, proc)
        eng.run()
        assert proc.value == "done"

    def test_unlisted_rank_not_armed(self):
        eng = Engine()
        plan = TimedFailure([(3, 5.0)])

        def rank0():
            yield eng.timeout(10.0)
            return "survived"

        proc = eng.process(rank0(), name="rank0")
        plan.arm(eng, 0, proc)
        eng.run()
        assert proc.value == "survived"
