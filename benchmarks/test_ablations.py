"""Ablation studies for the design choices DESIGN.md calls out.

These are not paper figures; they justify the modelling decisions behind
them:

- binomial vs flat collectives (why App-MPI scales logarithmically);
- VeloC flush chunk size (why background flushes must be preemptable);
- PFS I/O-server count (the Lustre bottleneck knob);
- spare-pool size under repeated failures;
- checkpoint-interval sweep (the recompute / checkpoint-cost trade-off).
"""

import pytest

from benchmarks.conftest import run_once, save_table
from repro.apps import HeatdisConfig
from repro.experiments import paper_env
from repro.harness import run_heatdis_job
from repro.mpi import World
from repro.sim import (
    Cluster,
    ClusterSpec,
    IterationFailure,
    NetworkSpec,
    NodeSpec,
    PFSSpec,
)
from repro.util.units import GiB, MiB


def _cfg(**kw):
    base = dict(
        local_rows=8, cols=16, modeled_bytes_per_rank=512e6, n_iters=60,
        work_multiplier=1000.0,
    )
    base.update(kw)
    return HeatdisConfig(**base)


@pytest.mark.benchmark(group="ablation")
def test_ablation_collectives(benchmark, results_dir):
    """Binomial-tree bcast beats flat bcast, increasingly with P."""

    def measure(n_ranks, algorithm):
        cluster = Cluster(
            ClusterSpec(
                n_nodes=n_ranks,
                node=NodeSpec(nic_bandwidth=1 * GiB, nic_latency=2e-6),
                network=NetworkSpec(fabric_latency=1e-6),
            )
        )
        world = World(cluster, n_ranks)
        times = {}

        def body(rank):
            h = world.comm_world_handle(rank)
            payload = b"x" if rank == 0 else None
            t0 = cluster.engine.now
            yield from h.bcast(payload, root=0, nbytes=8 * MiB,
                               algorithm=algorithm)
            times[rank] = cluster.engine.now - t0

        for r in range(n_ranks):
            world.spawn(r, body(r))
        cluster.engine.run()
        return max(times.values())

    def experiment():
        rows = []
        for n in (4, 16, 64):
            rows.append((n, measure(n, "binomial"), measure(n, "flat")))
        return rows

    rows = run_once(benchmark, experiment)
    lines = ["Ablation: bcast algorithm (8 MiB payload)",
             "ranks  binomial(s)  flat(s)  speedup"]
    for n, tree, flat in rows:
        lines.append(f"{n:>5}  {tree:11.4f}  {flat:7.4f}  {flat / tree:7.2f}x")
    save_table(results_dir, "ablation_collectives.txt", "\n".join(lines))
    # the flat root serializes P-1 sends; the tree pipelines in log P
    for n, tree, flat in rows:
        if n >= 16:
            assert flat > tree
    assert rows[-1][2] / rows[-1][1] > rows[0][2] / rows[0][1]


@pytest.mark.benchmark(group="ablation")
def test_ablation_pfs_servers(benchmark, results_dir):
    """More PFS I/O servers -> less checkpoint congestion."""

    def experiment():
        rows = []
        for n_servers in (1, 2, 4, 8):
            env = paper_env(n_nodes=9, pfs_servers=n_servers)
            rep = run_heatdis_job(env, "fenix_kr_veloc", 8, _cfg(), 9)
            base = run_heatdis_job(
                paper_env(n_nodes=9, pfs_servers=n_servers), "none", 8,
                _cfg(), 9,
            )
            rows.append((n_servers, rep.wall_time - base.wall_time,
                         rep.category("app_mpi") - base.category("app_mpi")))
        return rows

    rows = run_once(benchmark, experiment)
    lines = ["Ablation: PFS I/O servers vs checkpoint overhead (512MB/rank)",
             "servers  overhead(s)  extra app_mpi(s)"]
    for n, ov, mpi in rows:
        lines.append(f"{n:>7}  {ov:11.3f}  {mpi:16.3f}")
    save_table(results_dir, "ablation_pfs.txt", "\n".join(lines))
    assert rows[0][1] > rows[-1][1]  # 1 server worst, 8 best


@pytest.mark.benchmark(group="ablation")
def test_ablation_flush_chunk(benchmark, results_dir):
    """Coarser PFS flush chunks head-of-line-block application messages."""

    def measure(chunk_bytes):
        env0 = paper_env(n_nodes=9, pfs_servers=1)
        spec = ClusterSpec(
            n_nodes=env0.cluster_spec.n_nodes,
            node=env0.cluster_spec.node,
            network=env0.cluster_spec.network,
            pfs=PFSSpec(
                n_servers=1,
                server_bandwidth=env0.cluster_spec.pfs.server_bandwidth,
                server_latency=env0.cluster_spec.pfs.server_latency,
                chunk_bytes=chunk_bytes,
            ),
            seed=env0.cluster_spec.seed,
        )
        env = type(env0)(cluster_spec=spec, costs=env0.costs,
                         n_spares=env0.n_spares)
        rep = run_heatdis_job(env, "fenix_kr_veloc", 8, _cfg(), 9)
        return rep.category("app_mpi")

    def experiment():
        return [(c, measure(c)) for c in (1 * MiB, 8 * MiB, 64 * MiB, 512 * MiB)]

    rows = run_once(benchmark, experiment)
    lines = ["Ablation: PFS flush chunk size vs App-MPI congestion",
             "chunk(MiB)  app_mpi(s)"]
    for c, mpi in rows:
        lines.append(f"{c / MiB:>10.0f}  {mpi:9.3f}")
    save_table(results_dir, "ablation_flush_chunk.txt", "\n".join(lines))
    # giant chunks block halo messages behind whole checkpoints
    assert rows[-1][1] > rows[0][1]


@pytest.mark.benchmark(group="ablation")
def test_ablation_burst_buffer(benchmark, results_dir):
    """Adding a burst-buffer tier reduces checkpoint congestion and
    speeds recovery for replacement ranks."""
    from dataclasses import replace as dc_replace

    from repro.sim import IterationFailure

    def run_cfg(use_bb):
        env0 = paper_env(n_nodes=9, pfs_servers=1)
        spec = ClusterSpec(
            n_nodes=env0.cluster_spec.n_nodes,
            node=env0.cluster_spec.node,
            network=env0.cluster_spec.network,
            pfs=env0.cluster_spec.pfs,
            burst_buffer=PFSSpec(
                n_servers=4, server_bandwidth=4 * GiB,
                server_latency=1e-5, chunk_bytes=8 * MiB,
            ),
            seed=env0.cluster_spec.seed,
        )
        env = type(env0)(
            cluster_spec=spec, costs=env0.costs, n_spares=env0.n_spares,
            use_burst_buffer=use_bb,
        )
        plan = IterationFailure([(1, 44)])
        clean = run_heatdis_job(env, "fenix_kr_veloc", 8, _cfg(), 9)
        env2 = type(env0)(
            cluster_spec=spec, costs=env0.costs, n_spares=env0.n_spares,
            use_burst_buffer=use_bb,
        )
        failed = run_heatdis_job(env2, "fenix_kr_veloc", 8, _cfg(), 9,
                                 plan=plan)
        return clean, failed

    def experiment():
        return {use_bb: run_cfg(use_bb) for use_bb in (False, True)}

    out = run_once(benchmark, experiment)
    lines = ["Ablation: burst-buffer tier (512MB/rank, 1 PFS server)",
             "config      clean_app_mpi(s)  recovery(s)  fail_cost(s)"]
    for use_bb, (clean, failed) in out.items():
        name = "bb" if use_bb else "pfs-only"
        lines.append(
            f"{name:>10}  {clean.category('app_mpi'):16.3f}"
            f"  {failed.category('data_recovery'):11.3f}"
            f"  {failed.wall_time - clean.wall_time:12.3f}"
        )
    save_table(results_dir, "ablation_burst_buffer.txt", "\n".join(lines))
    clean_pfs, failed_pfs = out[False]
    clean_bb, failed_bb = out[True]
    # the BB absorbs flushes: less App-MPI congestion
    assert clean_bb.category("app_mpi") <= clean_pfs.category("app_mpi")


@pytest.mark.benchmark(group="ablation")
def test_ablation_spares(benchmark, results_dir):
    """Repeated failures consume spares; runs survive exactly n_spares
    failures before shrinking."""

    def run_with_failures(n_failures, n_spares):
        kills = [(r, 9 * (2 + r) + 8) for r in range(n_failures)]
        env = paper_env(n_nodes=8 + n_spares, n_spares=n_spares,
                        pfs_servers=1)
        rep = run_heatdis_job(
            env, "fenix_kr_veloc", 8, _cfg(), 9,
            plan=IterationFailure(kills),
        )
        return rep

    def experiment():
        rows = []
        for n_failures in (0, 1, 2, 3):
            rep = run_with_failures(n_failures, n_spares=3)
            rows.append((n_failures, rep.wall_time, rep.attempts))
        return rows

    rows = run_once(benchmark, experiment)
    lines = ["Ablation: repeated failures with a 3-spare pool (8 ranks)",
             "failures  wall(s)  attempts"]
    for n, wall, attempts in rows:
        lines.append(f"{n:>8}  {wall:7.2f}  {attempts:8d}")
    save_table(results_dir, "ablation_spares.txt", "\n".join(lines))
    walls = [w for _n, w, _a in rows]
    assert all(a == 1 for _n, _w, a in rows)  # never relaunched
    assert walls == sorted(walls)  # each failure adds cost


@pytest.mark.benchmark(group="ablation")
def test_ablation_checkpoint_interval(benchmark, results_dir):
    """Young-style trade-off: frequent checkpoints cost overhead, rare
    checkpoints cost recompute after a failure."""

    def measure(interval):
        cfg = _cfg(n_iters=60)
        # iteration 50: the latest restorable checkpoint is 48 / 45 / 27
        # for intervals 3 / 9 / 27
        plan = IterationFailure([(1, 50)])
        env = paper_env(n_nodes=9, pfs_servers=1)
        rep = run_heatdis_job(env, "fenix_kr_veloc", 8, cfg, interval,
                              plan=plan)
        return rep

    def experiment():
        return [(i, measure(i)) for i in (3, 9, 27)]

    rows = run_once(benchmark, experiment)
    lines = ["Ablation: checkpoint interval with a failure at iteration 50",
             "interval  wall(s)  recompute(s)  ckpt_fn+appmpi(s)"]
    for i, rep in rows:
        lines.append(
            f"{i:>8}  {rep.wall_time:7.2f}  {rep.category('recompute'):12.2f}"
            f"  {rep.category('checkpoint_function') + rep.category('app_mpi'):17.2f}"
        )
    save_table(results_dir, "ablation_interval.txt", "\n".join(lines))
    recomputes = {i: rep.category("recompute") for i, rep in rows}
    assert recomputes[27] > recomputes[3]  # rare ckpts -> more recompute
