"""Figure 7: MiniMD view census (Checkpointed / Alias / Skipped)."""

import pytest

from benchmarks.conftest import run_once, save_table
from repro.experiments.fig7_views import SIM_SIZES, format_fig7, run_fig7_census


@pytest.mark.benchmark(group="fig7")
def test_fig7_view_census(benchmark, results_dir):
    rows = run_once(benchmark, lambda: run_fig7_census(SIM_SIZES))
    table = format_fig7(rows, title="Figure 7: MiniMD view census")
    save_table(results_dir, "fig7_views.txt", table)

    for row in rows:
        # the paper's Section VI-E counts, at every simulation size
        assert row.counts == {"checkpointed": 39, "alias": 3, "skipped": 19}
        assert sum(row.fractions.values()) == pytest.approx(1.0)
        # "a single view contains the majority of the data"
        assert row.dominant_view_fraction > 0.5
        # "the large memory size of the 19 skipped views"
        assert row.fractions["skipped"] > row.fractions["alias"]
