"""Figure 6: MiniMD resilience weak scaling with phase breakdown."""

import pytest

from benchmarks.conftest import FIG6_PFS, FIG6_RANKS, run_once, save_table
from repro.experiments.fig6_minimd import (
    FIG6_STRATEGIES,
    format_fig6,
    run_fig6_cell,
)


@pytest.mark.benchmark(group="fig6")
def test_fig6_minimd_weak_scaling(benchmark, results_dir):
    def experiment():
        cells = {}
        for n in FIG6_RANKS:
            for strategy in FIG6_STRATEGIES:
                cells[(strategy, n)] = run_fig6_cell(
                    strategy, n,
                    with_failure=(strategy != "none"),
                    pfs_servers=FIG6_PFS,
                )
        return cells

    cells = run_once(benchmark, experiment)
    table = format_fig6(
        list(cells.values()),
        title=f"Figure 6: MiniMD weak scaling, {FIG6_PFS} PFS server(s)",
    )
    save_table(results_dir, "fig6_minimd.txt", table)

    for n in FIG6_RANKS:
        base = cells[("none", n)].clean
        full = cells[("fenix_kr_veloc", n)].clean
        # three phases present with the paper's ordering
        assert full.category("force_compute") > full.category("communicator")
        assert full.category("force_compute") > full.category("neighboring")
        # resilience adds little to the clean run
        assert full.wall_time < base.wall_time * 1.05
        # Fenix failure cost < relaunch failure cost (big init saved)
        assert (
            cells[("fenix_kr_veloc", n)].failure_cost
            < cells[("kr_veloc", n)].failure_cost
        )
        # ... and the savings sit in "Other"
        fenix_extra_other = (
            cells[("fenix_kr_veloc", n)].failed.other - full.other
        )
        relaunch_extra_other = (
            cells[("kr_veloc", n)].failed.other
            - cells[("kr_veloc", n)].clean.other
        )
        assert fenix_extra_other < relaunch_extra_other
