"""Profiler overhead: analysis-path cost and the disabled-path budget.

Two concerns, one file:

- the **disabled path**: the span guards added for the profiler sit on
  the simulator's hot paths (``compute``, every MPI op, checkpoint and
  recovery calls); ``test_untelemetered_job_wall_clock`` runs a whole
  failure-injection job with telemetry *off*, so any cost leaking past
  the ``tel.enabled`` checks shows up here.  Its baseline is committed
  in ``BENCH_simulator.json`` and the CI ``profile-smoke`` job gates it
  at a 5% budget (tighter than the general 30% gate: this path is
  supposed to be free);
- the **analysis path**: building the ledger and folding flame-graph
  stacks over a large synthetic span stream must stay roughly linear in
  the record count -- these benchmarks give regressions in the sweep or
  the stack walk a place to show up.
"""

import pytest

from repro.apps.heatdis import HeatdisConfig
from repro.experiments.common import paper_env
from repro.harness.runner import run_heatdis_job
from repro.profile.flamegraph import folded_stacks
from repro.profile.ledger import build_ledger
from repro.sim.failures import IterationFailure
from repro.telemetry import Telemetry

N_RANKS = 8
N_SPANS_PER_RANK = 2_000


class _Clock:
    def __init__(self):
        self.now = 0.0


def synthetic_stream(n_ranks=N_RANKS, per_rank=N_SPANS_PER_RANK):
    """A tracer loaded like a long campaign: nested compute/mpi/ckpt
    spans plus recovery windows, ~n_ranks * per_rank records."""
    tel = Telemetry(enabled=True)
    clock = _Clock()
    tel.tracer.bind(clock)
    for rank in range(n_ranks):
        src = f"rank{rank}"
        t = 0.0
        for i in range(per_rank // 4):
            clock.now = t
            with tel.span(src, "kr.region", iteration=i):
                clock.now = t + 0.1
                with tel.span(src, "compute", kind="app_compute",
                              congestion=0.01):
                    clock.now = t + 0.6
                with tel.span(src, "mpi.sendrecv"):
                    clock.now = t + 0.8
                if i % 10 == 0:
                    with tel.span(src, "kr.commit", version=i):
                        clock.now = t + 0.9
            t += 1.0
        clock.now = t
        tel.instant(src, "rank_dead")
    return tel


@pytest.fixture(scope="module")
def loaded_stream():
    return synthetic_stream()


@pytest.mark.benchmark(group="profile")
def test_ledger_build_throughput(benchmark, loaded_stream):
    """Sweep-attribution cost over ~16k spans on 8 rank timelines."""
    ledger = benchmark(build_ledger, loaded_stream)
    assert len(ledger.ranks) == N_RANKS
    for rl in ledger.ranks.values():
        assert abs(rl.residual) <= 1e-9 * max(1.0, rl.makespan)


@pytest.mark.benchmark(group="profile")
def test_flamegraph_fold_throughput(benchmark, loaded_stream):
    """Folded-stack walk over the same stream."""
    stacks = benchmark(folded_stacks, loaded_stream)
    assert stacks
    assert any(s.count(";") >= 2 for s in stacks)


@pytest.mark.benchmark(group="simulator")
def test_untelemetered_job_wall_clock(benchmark):
    """The disabled path: a full failure-injection job with telemetry
    off.  Every profiler guard on the hot paths runs, none may record.
    Gated at 5% against the committed baseline by CI's profile-smoke."""

    def run():
        env = paper_env(5, n_spares=1, pfs_servers=2)
        cfg = HeatdisConfig(n_iters=30, modeled_bytes_per_rank=8e6)
        plan = IterationFailure.between_checkpoints(2, 10, 1)
        report = run_heatdis_job(env, "fenix_kr_veloc", 4, cfg, 10,
                                 plan=plan)
        assert report.telemetry is None
        return report.wall_time

    wall = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert wall > 0.0
