"""Extension study: strategies under a campaign of random failures.

Not a paper figure -- it connects the paper's Blue-Waters motivation
(memoryless node failures in production) to its evaluation by measuring
whole-campaign efficiency instead of a single controlled failure.
"""

import pytest

from benchmarks.conftest import run_once, save_table
from repro.experiments import format_campaign, run_campaign


@pytest.mark.benchmark(group="campaign")
def test_failure_campaign(benchmark, results_dir):
    study = run_once(benchmark, lambda: run_campaign(n_ranks=8))
    save_table(results_dir, "campaign.txt", format_campaign(study))
    relaunch = study.result("kr_veloc")
    fenix = study.result("fenix_kr_veloc")
    # the same failures hit both configurations
    assert relaunch.failures >= 1
    assert fenix.failures >= 1
    # online recovery wins the campaign, without any relaunch
    assert fenix.report.attempts == 1
    assert relaunch.report.attempts == relaunch.failures + 1
    assert study.efficiency("fenix_kr_veloc") > study.efficiency("kr_veloc")
