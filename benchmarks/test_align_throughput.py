"""Alignment-engine throughput on large synthetic trace pairs.

The differential layer is post-mortem tooling, but ``check --replay``
runs inside CI and campaign audits align every cell, so keying and
alignment must stay linear and fast on traces far larger than the
figure runs produce.  The streams here tile the Section 4 shrink
protocol shape -- per-rank KR region begin/commit per epoch, periodic
VeloC checkpoints -- to ~14k records per side (group ``align`` in
``BENCH_simulator.json``; see docs/PERFORMANCE.md).
"""

import pytest

from repro.align.engine import align, first_divergence_report
from repro.align.keying import key_records
from repro.sim.trace import TraceRecord

N_EPOCHS = 400
RANKS = 16
CKPT_EVERY = 10


def protocol_stream(drift_epoch=None):
    """One synthetic protocol stream; ``drift_epoch`` plants a value
    drift in that epoch's checkpoints (the root-cause benchmark)."""
    records = []
    t = 0.0
    for epoch in range(N_EPOCHS):
        for rank in range(RANKS):
            t += 1e-3
            records.append(TraceRecord(
                time=t, source=f"kr.rank{rank}", kind="kr_region_begin",
                fields={"label": "bench", "iteration": epoch}))
            records.append(TraceRecord(
                time=t, source=f"kr.rank{rank}", kind="kr_region_commit",
                fields={"label": "bench", "iteration": epoch}))
        if epoch % CKPT_EVERY == CKPT_EVERY - 1:
            for rank in range(RANKS):
                t += 1e-3
                nbytes = (1 << 20) + (
                    rank + 1 if drift_epoch == epoch else 0)
                records.append(TraceRecord(
                    time=t, source=f"veloc.rank{rank}", kind="checkpoint",
                    fields={"version": epoch // CKPT_EVERY,
                            "nbytes": nbytes}))
    return records


@pytest.mark.benchmark(group="align")
def test_align_keying_throughput(benchmark):
    """Canonical keys + canonical values over one large stream."""
    records = protocol_stream()
    keyed = benchmark(key_records, records)
    assert len(keyed) == len(records)
    assert len({kr.key for kr in keyed}) == len(records)


@pytest.mark.benchmark(group="align")
def test_align_identical_pair_throughput(benchmark):
    """The audit hot path: two identical streams, full alignment."""
    a, b = protocol_stream(), protocol_stream()
    alignment = benchmark(align, a, b)
    assert not alignment.divergent
    assert alignment.matched == len(a)


@pytest.mark.benchmark(group="align")
def test_align_root_cause_throughput(benchmark):
    """Divergent pair: alignment plus the first-divergence report."""
    # a checkpoint epoch halfway through the run
    a, b = protocol_stream(), protocol_stream(
        drift_epoch=N_EPOCHS // 2 - 1)

    def run():
        alignment = align(a, b)
        return alignment, first_divergence_report(alignment, a, b)

    alignment, report = benchmark(run)
    assert alignment.counts()["value"] == RANKS
    assert report["first"]["layer"] == "veloc"
    assert report["first"]["fields"] == ["nbytes"]
