"""Compare a pytest-benchmark JSON run against a committed baseline.

Usage::

    python benchmarks/check_regression.py BASELINE.json NEW.json [--max-regression 0.30]

Exits non-zero if any benchmark present in both files regressed (mean
time grew) by more than the threshold.  Benchmarks only in one file are
reported but don't fail the check, so adding a benchmark never blocks
the PR that introduces it.  Machine-to-machine variance is why the
default gate is a generous 30%: the job catches order-of-magnitude
mistakes (an accidentally quadratic path, a lost fast path), not noise.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_means(path: str) -> dict:
    with open(path) as fh:
        doc = json.load(fh)
    return {b["name"]: b["stats"]["mean"] for b in doc["benchmarks"]}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("new")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="allowed fractional mean-time growth "
                             "(default 0.30 = 30%%)")
    args = parser.parse_args(argv)

    base = load_means(args.baseline)
    new = load_means(args.new)
    failures = []
    unanchored = []
    missing = []
    for name in sorted(set(base) | set(new)):
        if name not in base:
            unanchored.append(name)
            print(f"  NEW      {name}: {new[name] * 1e3:.2f} ms (no baseline)")
            continue
        if name not in new:
            missing.append(name)
            print(f"  MISSING  {name}: present only in baseline")
            continue
        ratio = new[name] / base[name]
        status = "ok"
        if ratio > 1.0 + args.max_regression:
            status = "REGRESSED"
            failures.append((name, ratio - 1.0))
        print(
            f"  {status:<9}{name}: {base[name] * 1e3:.2f} ms -> "
            f"{new[name] * 1e3:.2f} ms ({ratio:.1%} of baseline)"
        )
    # benchmarks without a baseline anchor pass by construction -- say so
    # explicitly instead of letting them blend into the gated rows
    if unanchored:
        print(f"\n{len(unanchored)} benchmark(s) new, unanchored -- not "
              "gated until the committed baseline is refreshed:")
        for name in unanchored:
            print(f"  {name}: {new[name] * 1e3:.2f} ms")
    if missing:
        print(f"\n{len(missing)} baseline benchmark(s) missing from this "
              "run (renamed or removed? refresh the baseline):")
        for name in missing:
            print(f"  {name}")
    if failures:
        print(
            f"\nFAIL: {len(failures)} benchmark(s) regressed beyond the "
            f"{args.max_regression:+.0%} budget:"
        )
        for name, delta in sorted(failures, key=lambda f: -f[1]):
            print(f"  {name}: {delta:+.1%} mean time "
                  f"(budget {args.max_regression:+.0%})")
        return 1
    gated = len(set(base) & set(new))
    print(f"\nno regression beyond the threshold ({gated} gated, "
          f"{len(unanchored)} unanchored, {len(missing)} missing)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
