"""Figure 5 (left panel): Heatdis 64-node data scaling, 16 MB .. 1 GB.

Regenerates the stacked categories (no-failure run) and the failure cost
for every strategy column, and checks the headline shape claims inline.
"""

import pytest

from benchmarks.conftest import FIG5_PFS, FIG5_RANKS, run_once, save_table
from repro.experiments.fig5_heatdis import (
    FIG5_STRATEGIES,
    format_fig5,
    run_fig5_cell,
)

SIZES = ["16MB", "64MB", "256MB", "1GB"]


@pytest.mark.benchmark(group="fig5")
def test_fig5_data_scaling(benchmark, results_dir):
    def experiment():
        cells = []
        for size in SIZES:
            for strategy in FIG5_STRATEGIES:
                cells.append(
                    run_fig5_cell(
                        strategy, size, FIG5_RANKS,
                        with_failure=(strategy != "none"),
                        pfs_servers=FIG5_PFS,
                    )
                )
        return cells

    cells = run_once(benchmark, experiment)
    table = format_fig5(
        cells,
        title=(
            f"Figure 5 (left): Heatdis data scaling, {FIG5_RANKS} ranks, "
            f"{FIG5_PFS} PFS server(s)"
        ),
    )
    save_table(results_dir, "fig5_data_scaling.txt", table)

    def cell(strategy, size):
        for c in cells:
            if c.strategy == strategy and c.data_bytes == _bytes(size):
                return c
        raise KeyError((strategy, size))

    def _bytes(size):
        from repro.util.units import parse_size

        return parse_size(size)

    # shape claims on the full sweep
    for size in SIZES:
        none_wall = cell("none", size).clean.wall_time
        # KR-managed VeloC ~ manual VeloC; Fenix adds ~nothing
        assert cell("kr_veloc", size).clean.wall_time == pytest.approx(
            cell("veloc", size).clean.wall_time, rel=0.03
        )
        assert cell("fenix_kr_veloc", size).clean.wall_time == pytest.approx(
            cell("kr_veloc", size).clean.wall_time, rel=0.03
        )
        # Fenix beats relaunch on failure cost
        assert (
            cell("fenix_kr_veloc", size).failure_cost
            < cell("kr_veloc", size).failure_cost
        )
    # IMR wins at the smallest size, checkpoint-fn scales with size
    small, large = SIZES[0], SIZES[-1]
    assert (
        cell("fenix_kr_imr", small).clean.wall_time
        <= cell("fenix_kr_veloc", small).clean.wall_time + 1e-9
    )
    assert cell("fenix_kr_imr", large).clean.category(
        "checkpoint_function"
    ) > 10 * cell("fenix_kr_imr", small).clean.category("checkpoint_function")
