"""Simulator performance: event throughput and protocol-path costs.

Unlike the figure benchmarks (which run once and emit tables), these
measure the *reproduction's own* hot paths with real repetition, so
regressions in the simulator show up in benchmark history.
"""

import pytest

from repro.mpi import SUM, World
from repro.sim import Cluster, ClusterSpec, Engine, NetworkSpec, NodeSpec


def small_cluster(n_nodes):
    return Cluster(
        ClusterSpec(
            n_nodes=n_nodes,
            node=NodeSpec(nic_bandwidth=1e9, nic_latency=1e-6,
                          memory_bandwidth=1e10),
            network=NetworkSpec(fabric_latency=0.0),
        )
    )


@pytest.mark.benchmark(group="simulator")
def test_engine_event_throughput(benchmark):
    """Raw engine speed: schedule and dispatch 50k timeout events."""

    def run():
        eng = Engine()

        def ticker():
            for _ in range(50_000):
                yield eng.timeout(0.001)

        eng.process(ticker())
        eng.run()
        return eng.now

    result = benchmark(run)
    assert result == pytest.approx(50.0)


@pytest.mark.benchmark(group="simulator")
def test_p2p_message_rate(benchmark):
    """Ping-pong throughput through the full matching + network stack."""

    def run():
        cluster = small_cluster(2)
        world = World(cluster, 2)
        n = 2_000

        def rank0():
            h = world.comm_world_handle(0)
            for i in range(n):
                yield from h.send(i, dest=1)
                yield from h.recv(source=1)

        def rank1():
            h = world.comm_world_handle(1)
            for _ in range(n):
                got = yield from h.recv(source=0)
                yield from h.send(got, dest=0)

        world.spawn(0, rank0())
        world.spawn(1, rank1())
        cluster.engine.run()
        return cluster.network.messages_sent

    assert benchmark(run) == 4_000


@pytest.mark.benchmark(group="simulator")
def test_allreduce_rate(benchmark):
    """Collective throughput at 16 ranks (binomial trees over p2p)."""

    def run():
        cluster = small_cluster(16)
        world = World(cluster, 16)
        n = 100

        def body(rank):
            h = world.comm_world_handle(rank)
            total = 0.0
            for _ in range(n):
                total = yield from h.allreduce(1.0, op=SUM)
            return total

        for r in range(16):
            world.spawn(r, body(r))
        cluster.engine.run()
        return True

    assert benchmark(run)
