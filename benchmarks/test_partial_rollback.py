"""Section VI-D2: partial-rollback recovery speedup on convergence Heatdis."""

import pytest

from benchmarks.conftest import run_once, save_table
from repro.experiments import run_partial_rollback_comparison


@pytest.mark.benchmark(group="partial-rollback")
def test_partial_rollback_speedup(benchmark, results_dir):
    result = run_once(
        benchmark, lambda: run_partial_rollback_comparison(n_ranks=8)
    )
    text = "\n".join(
        [
            "Section VI-D2: partial vs full rollback (convergence Heatdis)",
            f"  clean wall:            {result.clean_wall:8.2f} s "
            f"({result.clean_iterations} iterations)",
            f"  full-rollback wall:    {result.full_rollback_wall:8.2f} s "
            f"({result.full_iterations} iterations)",
            f"  partial-rollback wall: {result.partial_rollback_wall:8.2f} s "
            f"({result.partial_iterations} iterations)",
            f"  full recovery cost:    {result.full_recovery_cost:8.2f} s",
            f"  partial recovery cost: {result.partial_recovery_cost:8.2f} s",
            f"  recovery speedup:      {result.speedup:8.2f}x "
            "(paper: 'nearly 2x')",
        ]
    )
    save_table(results_dir, "partial_rollback.txt", text)
    assert result.partial_recovery_cost < result.full_recovery_cost
    assert result.speedup > 1.3
