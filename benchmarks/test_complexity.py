"""Section VI-E: complexity-of-use statistics over this repository."""

import pytest

from benchmarks.conftest import run_once, save_table
from repro.experiments import analyze_complexity
from repro.experiments.complexity import format_complexity, integration_line_counts


@pytest.mark.benchmark(group="complexity")
def test_complexity_statistics(benchmark, results_dir):
    report = run_once(benchmark, analyze_complexity)
    counts = integration_line_counts()
    lines = [format_complexity(report), "", "Integration line counts:"]
    for name, n in sorted(counts.items()):
        lines.append(f"  {name:<16} {n} resilience lines")
    lines += [
        "",
        "Paper reference: MiniMD has 148 MPI call sites in 15 of 20+ files;",
        "Fenix integration needed <20 added lines in a single file, and the",
        "view census (61 views: 39/3/19) needed inspecting only a handful.",
    ]
    text = "\n".join(lines)
    save_table(results_dir, "complexity.txt", text)
    assert report.total_mpi_call_sites >= 9
    assert report.files_with_mpi == 3
