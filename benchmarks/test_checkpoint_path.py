"""Host-side checkpoint data-path throughput: full copy vs incremental.

Unlike the figure benchmarks these measure the *reproduction's own*
host cost of the VeloC checkpoint path -- the numpy copies and chunk
bookkeeping that dominate campaign wall-clock -- in the steady state the
incremental path optimizes: repeated checkpoints where tracked writes
touch 25% of the region between versions.

Arms (see docs/PERFORMANCE.md for the trade-off):

- ``full``: ``incremental=False``, a deep copy of every protected byte
  per version;
- ``incremental``: copy-on-write chunk snapshots, no content hashing --
  the pure host-side win, asserted at >= 30% below;
- ``dedup``: COW plus blake2b content addressing of the dirty chunks.
  Hashing costs more host CPU than the copies it avoids (blake2b runs
  at roughly half memcpy speed), so this arm is *recorded* for history
  but carries no reduction assertion: its payoff is modelled PFS flush
  bytes, not host time.

PFS flushing is disabled for the timed arms so the measurement is the
host data path alone, not simulated-flush event processing (the
``dedup`` arm keeps flushing on, which content addressing requires).
"""

import time

import pytest

from repro.kokkos import KokkosRuntime
from repro.mpi import World
from repro.sim import Cluster, ClusterSpec, NetworkSpec, NodeSpec, PFSSpec
from repro.veloc import VeloCClient, VeloCConfig, VeloCService

#: steady-state checkpoints measured per run (after one full warm-up)
N_CHECKPOINTS = 10
#: fraction of rows rewritten (via tracked writes) between versions
DIRTY_FRACTION = 0.25
#: real array sizes.  Below a few MiB the path is bookkeeping-bound and
#: per-chunk overheads erase the copy savings; the incremental win is a
#: throughput property of checkpoint-sized regions.
SIZES_MIB = [4, 8, 16]

ARM_CONFIGS = {
    "full": dict(incremental=False, dedup=False, flush_to_pfs=False),
    "incremental": dict(incremental=True, dedup=False, flush_to_pfs=False),
    "dedup": dict(incremental=True, dedup=True, flush_to_pfs=True),
}


def _cluster():
    return Cluster(
        ClusterSpec(
            n_nodes=1,
            node=NodeSpec(nic_bandwidth=1e9, nic_latency=1e-6,
                          memory_bandwidth=1e10),
            network=NetworkSpec(fabric_latency=0.0),
            pfs=PFSSpec(n_servers=1, server_bandwidth=1e8,
                        server_latency=0.0, chunk_bytes=1e6),
        )
    )


def steady_state_host_seconds(mib: int, arm: str):
    """Host seconds for N steady-state checkpoints at 25% dirty."""
    cluster = _cluster()
    world = World(cluster, 1)
    service = VeloCService(cluster)
    config = VeloCConfig(mode="single", **ARM_CONFIGS[arm])
    client = VeloCClient(world.context(0), cluster, service, config,
                         comm=world.comm_world_handle(0))
    rt = KokkosRuntime()
    rows = mib * 1024 * 1024 // (8 * 256)
    v = rt.view("state", shape=(rows, 256))
    client.mem_protect(0, v)
    measured = {}

    def body():
        yield from client.checkpoint(0)  # warm-up: always a full copy
        dirty_rows = max(1, int(rows * DIRTY_FRACTION))
        t0 = time.perf_counter()
        for version in range(1, N_CHECKPOINTS + 1):
            v[0:dirty_rows] = float(version)  # tracked write
            yield from client.checkpoint(version)
        measured["host"] = time.perf_counter() - t0
        measured["stats"] = dict(client.stats)

    world.spawn(0, body())
    cluster.engine.run()
    world.raise_job_errors()
    return measured["host"], measured["stats"]


@pytest.mark.benchmark(group="checkpoint-path")
@pytest.mark.parametrize("mib", SIZES_MIB)
@pytest.mark.parametrize("arm", ["full", "incremental", "dedup"])
def test_checkpoint_path_host(benchmark, arm, mib):
    """Record per-arm host throughput in the benchmark history."""

    def run():
        host, stats = steady_state_host_seconds(mib, arm)
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert stats["checkpoints"] == N_CHECKPOINTS + 1
    # steady-state dirty fraction: strip the full warm-up version out
    per_version = stats["checkpoint_bytes"] / (N_CHECKPOINTS + 1)
    steady_dirty = (stats["dirty_bytes"] - per_version) / (
        per_version * N_CHECKPOINTS)
    expected = 1.0 if arm == "full" else DIRTY_FRACTION
    assert steady_dirty == pytest.approx(expected, rel=0.1)


@pytest.mark.parametrize("mib", SIZES_MIB)
def test_checkpoint_path_reduction(mib):
    """The acceptance bar: >= 30% host-time cut at a 25% dirty fraction.

    Measured over the better of three repetitions per arm: single-shot
    wall timings of ~10 ms regions see scheduler noise well above the
    margin this asserts.
    """
    full = min(steady_state_host_seconds(mib, "full")[0] for _ in range(3))
    incr = min(
        steady_state_host_seconds(mib, "incremental")[0] for _ in range(3)
    )
    reduction = 1.0 - incr / full
    print(f"\n{mib} MiB: full {full * 1e3:.1f} ms -> incremental "
          f"{incr * 1e3:.1f} ms ({reduction:.0%} reduction)")
    assert reduction >= 0.30, (
        f"incremental path saved only {reduction:.0%} host time at "
        f"{mib} MiB (bar: 30%)")
