"""Benchmark configuration.

Every benchmark regenerates one element of the paper's evaluation and
writes the resulting table under ``results/``.  Simulations are
deterministic, so each benchmark runs once (``pedantic`` with one round);
the pytest-benchmark timing measures the *simulator's* cost, while the
scientific output is the table.

By default benchmarks run at a reduced scale that preserves the paper's
node : PFS ratio (16 ranks, 1 I/O server, versus the paper's 64 ranks on
a 4-server Lustre partition).  Set ``REPRO_FULL_SCALE=1`` for the paper's
full node counts.
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

FULL_SCALE = os.environ.get("REPRO_FULL_SCALE", "") == "1"

#: Figure 5 scale
FIG5_RANKS = 64 if FULL_SCALE else 16
FIG5_PFS = 4 if FULL_SCALE else 1
FIG5_WEAK_NODES = [4, 16, 64] if FULL_SCALE else [4, 8, 16]

#: Figure 6 scale
FIG6_RANKS = [8, 27, 64] if FULL_SCALE else [4, 8, 16]
FIG6_PFS = 4 if FULL_SCALE else 1


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_table(results_dir, name: str, text: str) -> None:
    path = results_dir / name
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")


def run_once(benchmark, fn):
    """Run a deterministic experiment exactly once under the benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
