"""Figure 5 (right panel): Heatdis 1 GB/node weak scaling.

Node counts grow against a fixed PFS partition, so disk-based
checkpointing congestion grows with scale while IMR's pairwise traffic
scales with the ranks ("each rank adds both a producer and a consumer").
"""

import pytest

from benchmarks.conftest import FIG5_PFS, FIG5_WEAK_NODES, run_once, save_table
from repro.experiments.fig5_heatdis import (
    FIG5_STRATEGIES,
    format_fig5,
    run_fig5_cell,
)

DATA = "1GB"


@pytest.mark.benchmark(group="fig5")
def test_fig5_weak_scaling(benchmark, results_dir):
    def experiment():
        cells = []
        for n in FIG5_WEAK_NODES:
            for strategy in FIG5_STRATEGIES:
                cells.append(
                    run_fig5_cell(
                        strategy, DATA, n,
                        with_failure=(strategy != "none"),
                        pfs_servers=FIG5_PFS,
                    )
                )
        return cells

    cells = run_once(benchmark, experiment)
    table = format_fig5(
        cells,
        title=(
            f"Figure 5 (right): Heatdis weak scaling at {DATA}/node, "
            f"{FIG5_PFS} PFS server(s)"
        ),
    )
    save_table(results_dir, "fig5_weak_scaling.txt", table)

    def cell(strategy, n):
        for c in cells:
            if c.strategy == strategy and c.n_ranks == n:
                return c
        raise KeyError((strategy, n))

    # IMR scales better with rank count than disk-based VeloC: the
    # VeloC-over-none overhead grows with nodes; IMR's stays flat.
    lo, hi = FIG5_WEAK_NODES[0], FIG5_WEAK_NODES[-1]

    def overhead(strategy, n):
        return cell(strategy, n).clean.wall_time - cell("none", n).clean.wall_time

    veloc_growth = overhead("fenix_kr_veloc", hi) - overhead("fenix_kr_veloc", lo)
    imr_growth = overhead("fenix_kr_imr", hi) - overhead("fenix_kr_imr", lo)
    assert imr_growth < veloc_growth
    # Fenix failure-cost advantage holds at every scale
    for n in FIG5_WEAK_NODES:
        assert (
            cell("fenix_kr_veloc", n).failure_cost
            < cell("kr_veloc", n).failure_cost
        )
