"""Trace query performance: the per-kind index on large flight records.

The monitors and the post-mortem tooling replay traces far larger than
anything the figure benchmarks produce, and lean on ``records(kind=)``,
``first``/``last``/``count``.  These benchmarks keep the indexed paths in
the regression history (``BENCH_simulator.json`` workflow -- see
docs/PERFORMANCE.md).
"""

import pytest

from repro.sim import Trace

N_RECORDS = 100_000
N_QUERIES = 10_000


def big_trace(max_records=None):
    tr = Trace(max_records=max_records)
    for i in range(N_RECORDS):
        # a realistic kind mix: mostly bulk layer events, rare protocol ones
        kind = "checkpoint" if i % 50 == 0 else f"compute{i % 11}"
        tr.emit(float(i), f"veloc.rank{i % 16}", kind, version=i // 50)
    tr.emit(float(N_RECORDS), "fenix", "repair", generation=1)
    return tr


@pytest.mark.benchmark(group="trace")
def test_trace_emit_throughput(benchmark):
    """Recording cost with the per-kind index being maintained."""
    tr = benchmark(big_trace)
    assert len(tr) == N_RECORDS + 1


@pytest.mark.benchmark(group="trace")
def test_trace_indexed_point_queries(benchmark):
    """first/last/count of a rare kind must not scale with trace size."""
    tr = big_trace()

    def run():
        acc = 0
        for _ in range(N_QUERIES):
            acc += tr.count("repair")
            acc += tr.first("repair")["generation"]
            acc += tr.last("checkpoint")["version"]
        return acc

    assert benchmark(run) > 0


@pytest.mark.benchmark(group="trace")
def test_trace_indexed_kind_scan(benchmark):
    """records(kind=) walks only that kind's deque, not the whole trace."""
    tr = big_trace()

    def run():
        return sum(len(tr.records(kind="checkpoint")) for _ in range(100))

    assert benchmark(run) == 100 * (N_RECORDS // 50)


@pytest.mark.benchmark(group="trace")
def test_trace_ring_buffer_emit(benchmark):
    """Bounded recording: eviction must keep the index consistent."""

    def run():
        return big_trace(max_records=10_000)

    tr = benchmark(run)
    assert len(tr) == 10_000
    assert tr.dropped == N_RECORDS + 1 - 10_000
    assert tr.dropped_window is not None
